"""Workloads: the programs the paper evaluates CRONUS with.

* :mod:`repro.workloads.kernels` — the CUDA kernel library (the ``.cubin``
  contents) used by Rodinia and DNN training.
* :mod:`repro.workloads.rodinia` — analogs of the Rodinia GPU benchmarks
  (figure 7).
* :mod:`repro.workloads.datasets` — synthetic MNIST / CIFAR-10 / ImageNet
  stand-ins (shape-faithful; see DESIGN.md substitutions).
* :mod:`repro.workloads.dnn` — a mini training framework (tensors, layers,
  SGD) and the four paper models (LeNet / ResNet / VGG / DenseNet analogs)
  for figure 8 and figure 11.
* :mod:`repro.workloads.vta_bench` — the vta-bench microbenchmark
  (figure 10a).
* :mod:`repro.workloads.tvm` — a TVM-like compiler lowering layer graphs to
  NPU instruction streams for inference (figure 10b).
* :mod:`repro.workloads.llm` — the autoregressive transformer serving
  workload: prefill/decode cost model plus a paged KV cache carved out of
  partition stage-2 pages (the continuous-batching scenario).
"""

from repro.workloads import kernels  # noqa: F401  (registers the kernels)
from repro.workloads.llm import (  # noqa: F401
    LLMConfig,
    LLMCostModel,
    PagedKVCache,
)
