"""Synthetic datasets standing in for MNIST / CIFAR-10 / ImageNet.

The paper trains on the real datasets; we cannot ship them offline, and the
systems claims (RPC overhead, sharing, failover) are insensitive to pixel
content.  These generators keep the *shape signature* of each dataset
(channels, spatial layout after our scale-down, class count) and make the
data weakly learnable (class-dependent means), so training loss genuinely
decreases and end-to-end correctness is checkable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """A labelled image set: images (N,C,H,W) float32, labels (N,) int64."""

    name: str
    images: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __len__(self) -> int:
        return len(self.images)

    def one_hot(self) -> np.ndarray:
        return np.eye(self.num_classes, dtype=np.float32)[self.labels]

    def batches(self, batch_size: int):
        """Yield (images, onehot) minibatches, dropping the remainder."""
        onehot = self.one_hot()
        for start in range(0, len(self) - batch_size + 1, batch_size):
            yield (
                self.images[start : start + batch_size],
                onehot[start : start + batch_size],
            )


def _make(name: str, n: int, channels: int, size: int, classes: int, seed: int) -> Dataset:
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, classes, n)
    # Class-dependent mean pattern makes the task learnable.
    prototypes = rng.standard_normal((classes, channels, size, size)).astype(np.float32)
    noise = rng.standard_normal((n, channels, size, size)).astype(np.float32)
    images = prototypes[labels] + 0.5 * noise
    return Dataset(name=name, images=images, labels=labels.astype(np.int64), num_classes=classes)


def synthetic_mnist(n: int = 128, *, seed: int = 11) -> Dataset:
    """MNIST stand-in: 1-channel images, 10 classes (28x28 -> 8x8)."""
    return _make("mnist", n, channels=1, size=8, classes=10, seed=seed)


def synthetic_cifar10(n: int = 128, *, seed: int = 12) -> Dataset:
    """CIFAR-10 stand-in: 3-channel images, 10 classes (32x32 -> 8x8)."""
    return _make("cifar10", n, channels=3, size=8, classes=10, seed=seed)


def synthetic_imagenet(n: int = 64, *, seed: int = 13) -> Dataset:
    """ImageNet stand-in: 3-channel images, 100 classes (224x224 -> 16x16,
    1000 classes -> 100)."""
    return _make("imagenet", n, channels=3, size=16, classes=100, seed=seed)
