"""Data-parallel multi-GPU training (figure 11b).

LeNet is trained data-parallel across k GPUs: each replica computes
gradients on its batch shard, gradients are all-reduced, every replica
applies the same SGD step.  The paper compares three ways of moving the
gradients between accelerators in a TEE:

* ``p2p`` — CRONUS: direct GPU-to-GPU transfers over the secure PCIe bus,
  enabled by trusted shared GPU memory between mEnclaves.
* ``secure-staging`` — staging through CPU secure memory (one D2H + one
  H2D per hop).
* ``encrypted`` — the HIX/Graviton-style path: staging plus AES on every
  byte, because the memory crossed is untrusted.

Gradient exchange is *functionally* performed through the simulator
backdoor (no timing), and the communication time of the chosen mode is
charged explicitly — a ring all-reduce moves ``2 * V * (k-1)/k`` bytes per
GPU, overlapped across links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.sim import CostModel
from repro.workloads.datasets import Dataset, synthetic_mnist
from repro.workloads.dnn import Model, TRAINING_KERNELS, lenet

MODES = ("p2p", "secure-staging", "encrypted")


def comm_time_us(costs: CostModel, gradient_bytes: int, gpus: int, mode: str) -> float:
    """Per-step all-reduce time for one GPU's gradient volume."""
    if gpus <= 1:
        return 0.0
    volume = 2.0 * gradient_bytes * (gpus - 1) / gpus  # ring all-reduce
    if mode == "p2p":
        return costs.copy_cost_us(int(volume), per_kib=costs.pcie_p2p_us_per_kib)
    if mode == "secure-staging":
        return 2.0 * costs.copy_cost_us(int(volume), per_kib=costs.pcie_dma_us_per_kib)
    if mode == "encrypted":
        staged = 2.0 * costs.copy_cost_us(int(volume), per_kib=costs.pcie_dma_us_per_kib)
        cipher = 2.0 * costs.copy_cost_us(int(volume), per_kib=costs.encryption_us_per_kib)
        return staged + cipher
    raise ValueError(f"unknown all-reduce mode {mode!r}; pick one of {MODES}")


@dataclass(frozen=True)
class DataParallelResult:
    """One figure 11b data point."""

    gpus: int
    mode: str
    steps: int
    total_time_us: float
    step_time_us: float
    comm_time_us: float
    final_loss: float


def _allreduce(
    runtimes, models, costs: CostModel, mode: str, gradient_scale: float
) -> Tuple[int, float]:
    """Average gradients across replicas (functional, via the backdoor) and
    charge the mode's communication time once (links run in parallel).

    ``gradient_scale`` carries the analog model's tiny parameter count to
    the real model's (LeNet has ~60K parameters vs ~400 here), the same
    treatment ``sim_scale`` gives compute.
    """
    grads_per_replica: List[List[np.ndarray]] = []
    for rt, model in zip(runtimes, models):
        grads_per_replica.append(
            [rt.debug_gpu_buffer(g) for _p, g in model.all_params()]
        )
    gradient_bytes = int(sum(g.nbytes for g in grads_per_replica[0]) * gradient_scale)
    for buffers in zip(*grads_per_replica):
        mean = np.mean([b for b in buffers], axis=0)
        for b in buffers:
            b[...] = mean
    return gradient_bytes, comm_time_us(costs, gradient_bytes, len(runtimes), mode)


def data_parallel_train(
    system,
    gpus: int,
    mode: str,
    *,
    total_samples: int = 128,
    batch_size: int = 16,
    lr: float = 0.05,
    gradient_scale: float = 160.0,
    dataset: Dataset = None,
) -> DataParallelResult:
    """Train LeNet data-parallel on ``gpus`` GPUs of ``system``, measuring
    the time to process ``total_samples`` samples (the figure 11b y-axis:
    training time shrinks with more GPUs; the all-reduce mode decides how
    much of that win communication eats back).

    Per-step wall time is the representative replica's compute (replicas
    run concurrently on distinct GPUs — no SM contention between them)
    plus the all-reduce time of ``mode``.
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}")
    steps = max(1, total_samples // (batch_size * gpus))
    data = dataset or synthetic_mnist(batch_size * gpus * 2)
    runtimes, models = [], []
    for g in range(gpus):
        rt = system.runtime(
            cuda_kernels=TRAINING_KERNELS, gpu_name=f"gpu{g}", owner=f"replica-{g}"
        )
        model = lenet()
        model.build(rt, (batch_size, 1, 8, 8), seed=0)  # same init everywhere
        runtimes.append(rt)
        models.append(model)

    shards = list(data.batches(batch_size))
    costs = system.platform.costs
    total_time = 0.0
    total_comm = 0.0
    loss = float("nan")
    for step in range(steps):
        # Replicas run concurrently on distinct GPUs, so per-step wall time
        # is one replica's compute plus the all-reduce.  The single-clock
        # simulation executes every replica *functionally* but only replica
        # 0's duration enters the composed step time.
        mark = system.clock.now
        loss = models[0].forward_backward(
            runtimes[0], *shards[(step * gpus) % len(shards)]
        )
        compute = system.clock.now - mark
        for g in range(1, gpus):
            shard = shards[(step * gpus + g) % len(shards)]
            models[g].forward_backward(runtimes[g], *shard)
        _bytes, comm = _allreduce(runtimes, models, costs, mode, gradient_scale)
        mark = system.clock.now
        models[0].sgd_step(runtimes[0], lr)
        runtimes[0].cudaDeviceSynchronize()
        compute += system.clock.now - mark
        for g in range(1, gpus):
            models[g].sgd_step(runtimes[g], lr)
        total_time += compute + comm
        total_comm += comm
    for rt in runtimes:
        system.release(rt)
    return DataParallelResult(
        gpus=gpus,
        mode=mode,
        steps=steps,
        total_time_us=total_time,
        step_time_us=total_time / steps,
        comm_time_us=total_comm / steps,
        final_loss=loss,
    )
