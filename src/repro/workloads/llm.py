"""Simulated autoregressive transformer serving workload.

The LLM scenario the ROADMAP names (SHARP's ``fns/ollama`` brought into
the TEE): sequences arrive with a prompt, are **prefilled** once (one
full forward pass over the prompt), then **decode** one token per
iteration until they hit their token budget.  Three pieces live here:

* :class:`LLMConfig` — the model geometry (layers, width, KV dtype) and
  the paging geometry derived from it (KV bytes per token, tokens per
  block, stage-2 pages per block).
* :class:`LLMCostModel` — per-phase virtual-time costs calibrated
  against the same :class:`~repro.sim.costs.CostModel` constants the GPU
  kernel timing model uses (``gpu_flops_per_us``,
  ``gpu_kernel_launch_us``, ``pcie_dma_us_per_kib``), so a decode
  iteration and a ``cudaLaunchKernel`` matmul price compute identically.
* :class:`PagedKVCache` — the KV cache as **paged blocks of partition
  memory**: each block is a contiguous run of stage-2 pages allocated
  from the SPM (:meth:`~repro.secure.spm.SPM.allocate_pages`), written
  through :meth:`Partition.write <repro.secure.partition.Partition.write>`
  so every token append resolves through the stage-2 table and its TLB
  (the PR-1 fast lane).  Crash semantics follow the paper: a partition
  failure scrubs the pages (proceed-trap clear step) and reclaims them,
  so the cache's generation check forces the serving layer to re-prefill
  the victims — and the zero-check on freshly allocated blocks turns any
  scrub gap into a detected cross-sequence leak instead of silent reuse.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.hw.memory import PAGE_SIZE
from repro.secure.partition import Partition
from repro.secure.spm import SPM
from repro.sim.costs import CostModel

#: Bytes of each token's deterministic KV stamp (see ``token_stamp``).
STAMP_BYTES = 16


@dataclass(frozen=True)
class LLMConfig:
    """Model + paging geometry of the simulated transformer.

    The defaults describe a small decoder (4 layers x 128 wide, fp16 KV)
    so simulated-time magnitudes stay comparable to the existing matmul
    serving workload; the knobs scale the cost model and the KV footprint
    together.
    """

    n_layers: int = 4
    d_model: int = 128
    kv_dtype_bytes: int = 2
    block_tokens: int = 16
    """Tokens per KV block (the paged-attention page size, in tokens)."""

    def __post_init__(self) -> None:
        if self.n_layers < 1 or self.d_model < 1:
            raise ValueError("n_layers and d_model must be positive")
        if self.kv_dtype_bytes < 1:
            raise ValueError("kv_dtype_bytes must be positive")
        if self.block_tokens < 1:
            raise ValueError("block_tokens must be positive")

    @property
    def kv_bytes_per_token(self) -> int:
        """K and V rows across every layer for one token."""
        return 2 * self.n_layers * self.d_model * self.kv_dtype_bytes

    @property
    def block_bytes(self) -> int:
        return self.block_tokens * self.kv_bytes_per_token

    @property
    def pages_per_block(self) -> int:
        """Stage-2 pages backing one KV block (ceil)."""
        return -(-self.block_bytes // PAGE_SIZE)

    def blocks_for(self, tokens: int) -> int:
        """KV blocks needed to hold ``tokens`` tokens."""
        return -(-tokens // self.block_tokens) if tokens > 0 else 0

    def kv_footprint_bytes(self, tokens: int) -> int:
        """Page-granular KV footprint of a ``tokens``-token context — the
        number the admission quota charges (whole pages, like the SPM)."""
        return self.blocks_for(tokens) * self.pages_per_block * PAGE_SIZE


class LLMCostModel:
    """Virtual-time costs of the prefill/decode phases.

    Flop counts use the standard decoder estimate: ~24·L·d² flops of
    weight matmuls per token position plus 4·L·d·ctx of attention against
    the cached context.  Prefill runs all prompt positions in one fused
    pass (one kernel launch per layer); a decode iteration runs one
    position for *every* running sequence behind the same per-layer
    launches — which is exactly why continuous batching wins: the fixed
    ``n_layers x gpu_kernel_launch_us`` iteration overhead amortizes over
    however many sequences are resident.
    """

    def __init__(self, costs: CostModel, config: LLMConfig) -> None:
        self.costs = costs
        self.config = config

    def _flops_at(self, context_len: int) -> float:
        cfg = self.config
        weight = 24.0 * cfg.n_layers * cfg.d_model * cfg.d_model
        attention = 4.0 * cfg.n_layers * cfg.d_model * float(context_len)
        return weight + attention

    def prefill_us(self, prompt_tokens: int) -> float:
        """One fused forward pass over the whole prompt."""
        cfg = self.config
        costs = self.costs
        flops = sum(self._flops_at(i) for i in range(prompt_tokens))
        launch = cfg.n_layers * costs.gpu_kernel_launch_us
        # Prompt embeddings DMA over PCIe into device memory.
        dma = costs.copy_cost_us(
            prompt_tokens * cfg.d_model * cfg.kv_dtype_bytes,
            per_kib=costs.pcie_dma_us_per_kib,
        )
        return launch + dma + flops / costs.gpu_flops_per_us

    def decode_step_us(self, context_lens: Sequence[int]) -> float:
        """One decode iteration over a batch of resident sequences.

        ``context_lens`` holds each running sequence's current context
        length; every sequence advances by one token.  Empty batch = 0.
        """
        if not context_lens:
            return 0.0
        cfg = self.config
        costs = self.costs
        flops = sum(self._flops_at(ctx) for ctx in context_lens)
        launch = cfg.n_layers * costs.gpu_kernel_launch_us
        # Each emitted token's KV rows land in cache memory.
        kv = costs.copy_cost_us(
            len(context_lens) * cfg.kv_bytes_per_token,
            per_kib=costs.dram_copy_us_per_kib,
        )
        return launch + kv + flops / costs.gpu_flops_per_us


def token_stamp(rid: str, index: int) -> bytes:
    """The deterministic non-zero stamp written for token ``index`` of
    sequence ``rid`` — what the KV cache stores in lieu of real K/V rows.
    Non-zero by construction, so a scrubbed (zeroed) page can never pass
    for live KV data."""
    digest = hashlib.sha256(f"{rid}:{index}".encode()).digest()[:STAMP_BYTES]
    return digest if any(digest) else b"\x01" * STAMP_BYTES


class KVCacheError(Exception):
    """Misuse of the paged KV cache (unknown sequence, stale generation)."""


class PagedKVCache:
    """A paged KV cache carved out of one partition's stage-2 pages.

    Each sequence owns a block table: an ordered list of blocks, each a
    contiguous run of ``config.pages_per_block`` secure pages allocated
    from the SPM and identity-mapped into the partition's stage-2 table.
    Token appends write their stamp through the partition's single-page
    fast lane, so the cache exercises the same TLB the sRPC rings do.

    **Leak detection:** every freshly allocated block is scanned before
    first use; any non-zero byte means the allocator handed us a page
    that was recycled *without* being scrubbed — a cross-sequence KV leak
    (``leaked_blocks`` counts them, and they should always be zero: both
    ``free_pages`` and crash recovery zero pages before recycling).

    **Crash semantics:** when the partition dies, recovery scrubs and
    reclaims every page this cache held.  The cache detects the new
    partition generation via ``restarts`` and refuses stale block tables
    (:meth:`ensure_generation` drops them), forcing re-prefill.
    """

    def __init__(self, spm: SPM, partition: Partition, config: LLMConfig) -> None:
        self._spm = spm
        self._partition = partition
        self.config = config
        self._blocks: Dict[str, List[Tuple[int, ...]]] = {}
        self._tokens: Dict[str, int] = {}
        self._generation = partition.restarts
        self.blocks_allocated = 0
        self.blocks_released = 0
        self.tokens_written = 0
        self.leaked_blocks = 0

    @property
    def partition(self) -> Partition:
        return self._partition

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def stale(self) -> bool:
        """Did the partition restart since the block tables were built?"""
        return self._partition.restarts != self._generation

    def ensure_generation(self) -> bool:
        """Drop every block table if the partition restarted underneath us.

        Returns True when tables were dropped (recovery already scrubbed
        and reclaimed the pages — the sequences must re-prefill); callers
        never ``release`` stale tables, the pages are no longer theirs.
        """
        if not self.stale:
            return False
        self._blocks.clear()
        self._tokens.clear()
        self._generation = self._partition.restarts
        return True

    def sequences(self) -> List[str]:
        return list(self._blocks)

    def tokens_of(self, rid: str) -> int:
        return self._tokens.get(rid, 0)

    def pages_of(self, rid: str) -> Tuple[int, ...]:
        """Every stage-2 page currently backing ``rid``'s KV."""
        return tuple(
            page for block in self._blocks.get(rid, []) for page in block
        )

    def _allocate_block(self, rid: str) -> Tuple[int, ...]:
        pages = self._spm.allocate_pages(self._partition, self.config.pages_per_block)
        self.blocks_allocated += 1
        # Zero-scan before first use: recycled pages reach us only through
        # free_pages or crash recovery, both of which scrub.  A non-zero
        # byte here is another sequence's KV showing through — the exact
        # leak the paper's failure-clearing step exists to prevent.
        for page in pages:
            if any(self._partition.read(page * PAGE_SIZE, PAGE_SIZE)):
                self.leaked_blocks += 1
                break
        return pages

    def append_token(self, rid: str) -> int:
        """Append one token's KV rows for ``rid``; returns the token index.

        Allocates a fresh block at block boundaries and writes the token's
        deterministic stamp through the stage-2 fast lane.
        """
        if self.stale:
            raise KVCacheError(
                f"KV cache generation {self._generation} is stale "
                f"(partition restarted); call ensure_generation first"
            )
        index = self._tokens.get(rid, 0)
        blocks = self._blocks.setdefault(rid, [])
        slot = index % self.config.block_tokens
        if index // self.config.block_tokens >= len(blocks):
            blocks.append(self._allocate_block(rid))
        pages = blocks[index // self.config.block_tokens]
        offset = slot * self.config.kv_bytes_per_token
        page = pages[offset // PAGE_SIZE]
        self._partition.write(
            page * PAGE_SIZE + offset % PAGE_SIZE, token_stamp(rid, index)
        )
        self._tokens[rid] = index + 1
        self.tokens_written += 1
        return index

    def read_stamp(self, rid: str, index: int) -> bytes:
        """Read token ``index``'s stamp back (test/audit path)."""
        blocks = self._blocks.get(rid)
        if blocks is None or index >= self._tokens.get(rid, 0):
            raise KVCacheError(f"sequence {rid!r} has no token {index}")
        slot = index % self.config.block_tokens
        pages = blocks[index // self.config.block_tokens]
        offset = slot * self.config.kv_bytes_per_token
        page = pages[offset // PAGE_SIZE]
        return self._partition.read(
            page * PAGE_SIZE + offset % PAGE_SIZE, STAMP_BYTES
        )

    def release(self, rid: str) -> int:
        """Free a finished sequence's blocks (scrub + recycle); returns the
        number of pages returned to the allocator."""
        blocks = self._blocks.pop(rid, None)
        self._tokens.pop(rid, None)
        if blocks is None:
            return 0
        freed = 0
        for pages in blocks:
            self._spm.free_pages(self._partition, pages)
            freed += len(pages)
        self.blocks_released += len(blocks)
        return freed

    @property
    def resident_tokens(self) -> int:
        return sum(self._tokens.values())

    @property
    def resident_pages(self) -> int:
        return sum(
            len(pages) for blocks in self._blocks.values() for pages in blocks
        )

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "blocks_allocated": self.blocks_allocated,
            "blocks_released": self.blocks_released,
            "tokens_written": self.tokens_written,
            "leaked_blocks": self.leaked_blocks,
            "resident_pages": self.resident_pages,
        }
