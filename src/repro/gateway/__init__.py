"""The serverless function gateway.

The production entry point the ROADMAP's cluster item names: Rodinia,
DNN, TVM/NPU and LLM workloads registered as **named functions** behind
launchers (:mod:`repro.gateway.registry`), composable into **DAG
workflows** whose stages pin device classes and therefore span GPU and
NPU mEnclaves on different cluster nodes (:mod:`repro.gateway.workflow`),
invoked through one :class:`~repro.gateway.gateway.Gateway` with in-band
trace context across every hop.
"""

from repro.gateway.gateway import Gateway
from repro.gateway.registry import (
    FunctionContext,
    FunctionRegistry,
    FunctionSpec,
    GatewayError,
    default_registry,
)
from repro.gateway.workflow import Invocation, Stage, Workflow, WorkflowResult

__all__ = [
    "FunctionContext",
    "FunctionRegistry",
    "FunctionSpec",
    "Gateway",
    "GatewayError",
    "Invocation",
    "Stage",
    "Workflow",
    "WorkflowResult",
    "default_registry",
]
