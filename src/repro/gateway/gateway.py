"""The gateway: one production-shaped entry point over the cluster.

``invoke(name)`` routes a registered function to an alive node that (a)
holds the function's enclave image and (b) has a device of the function's
class, runs its launcher against that node's real enclave stack, and
meters the execution with the node's platform clock.  ``invoke_workflow``
executes a validated :class:`~repro.gateway.workflow.Workflow` DAG:
stages start when their dependencies finish (plus a costed cross-node
transfer when producer and consumer landed on different machines), so
GPU and NPU stages overlap exactly as far as the DAG allows.

Tracing: the gateway owns a :class:`~repro.obs.span.SpanRecorder` on its
own virtual clock.  A workflow opens one root span; every stage span is
parented via the **in-band** ``(trace_id, span_id)`` wire pair of its
latest-finishing dependency (or the root), and cross-node transfers are
their own spans on the ``network`` track — one Chrome trace covers the
whole cross-node DAG, causally linked across the node boundary, and
passes :func:`repro.obs.export.validate_chrome_trace`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.cluster.serve import ClusterServingSystem
from repro.gateway.registry import (
    FunctionContext,
    FunctionRegistry,
    FunctionSpec,
    GatewayError,
    default_registry,
)
from repro.gateway.workflow import Invocation, Workflow, WorkflowResult
from repro.obs.span import NO_SPAN, SpanRecorder
from repro.sim.clock import SimClock


class Gateway:
    """Serverless function front-end over a :class:`ClusterServingSystem`."""

    def __init__(
        self,
        cluster_serving: ClusterServingSystem,
        registry: Optional[FunctionRegistry] = None,
        *,
        obs: bool = True,
    ) -> None:
        self.cluster = cluster_serving
        self.registry = registry if registry is not None else default_registry()
        self._clock = SimClock()
        self.obs = SpanRecorder(self._clock, enabled=obs)
        self.invocations = 0
        # Default placement: every function's image on every alive node;
        # narrow with place_image() to model partial replication.
        for spec in self.registry.specs():
            if spec.image_id not in self.cluster.images.images():
                self.cluster.images.register(
                    spec.image_id,
                    [ns.name for ns in self.cluster._alive()],
                )

    # -- placement ---------------------------------------------------------
    def place_image(self, image_id: str, nodes) -> None:
        """Restrict (or re-place) an image's replica set."""
        self.cluster.images.register(image_id, nodes)

    def _node_has_class(self, ns, device_class: str) -> bool:
        return any(
            mos.device_type == device_class
            for mos in ns.node.system.moses.values()
        )

    def route_fn(self, spec: FunctionSpec, key: str) -> str:
        """The node an invocation of ``spec`` lands on."""
        candidates = [
            name
            for name in self.cluster.images.nodes_for(spec.image_id)
            if name in self.cluster._states
            and self.cluster._states[name].alive
            and self._node_has_class(self.cluster._states[name], spec.device_class)
        ]
        if not candidates:
            raise GatewayError(
                f"function {spec.name!r} is unroutable: no alive node holds "
                f"image {spec.image_id!r} with a {spec.device_class!r} device"
            )
        return self.cluster.router.home(key, candidates)

    # -- transfer costing --------------------------------------------------
    def transfer_us(self, nbytes: int) -> float:
        """Inter-node result handoff: one RTT + the payload over the
        untrusted network + seal/unseal at both ends (``docs/costmodel.md``)."""
        costs = self.cluster.cluster.costs
        return (
            costs.network_rtt_us
            + costs.copy_cost_us(nbytes, per_kib=costs.network_us_per_kib)
            + 2.0 * costs.copy_cost_us(nbytes, per_kib=costs.encryption_us_per_kib)
        )

    # -- invocation --------------------------------------------------------
    def invoke(
        self,
        name: str,
        args: Optional[Mapping[str, object]] = None,
        *,
        key: Optional[str] = None,
        parent=None,
        at_us: Optional[float] = None,
    ) -> Invocation:
        """Run one function now (or at virtual instant ``at_us``)."""
        spec = self.registry.get(name)
        target = self.route_fn(spec, key if key is not None else name)
        ns = self.cluster._states[target]
        start = self._clock.now if at_us is None else at_us
        span = self.obs.begin(
            f"fn:{name}", category="gateway", detached=True, ts=start,
            parent=parent, partition=target, node=target, fn=name,
        )
        ctx = FunctionContext(ns.node)
        clock0 = ns.node.system.clock.now
        try:
            result = dict(spec.launcher(ctx, **dict(args or {})))
        finally:
            ctx.close()
        service = result.pop("_service_us", None)
        if service is None:
            service = ns.node.system.clock.now - clock0
        end = start + float(service)
        self.obs.end(span, ts=end, service_us=float(service))
        if end > self._clock.now:
            self._clock.advance(end - self._clock.now)
        self.invocations += 1
        return Invocation(
            fn=name,
            node=target,
            start_us=start,
            end_us=end,
            service_us=float(service),
            result=result,
            context=span.context if span is not NO_SPAN else None,
        )

    def invoke_workflow(
        self, workflow: Workflow, *, at_us: Optional[float] = None
    ) -> WorkflowResult:
        """Execute a DAG; returns every stage's invocation."""
        start = self._clock.now if at_us is None else at_us
        root = self.obs.begin(
            f"workflow:{workflow.name}", category="gateway", detached=True,
            ts=start, partition="gateway", stages=len(workflow.stages),
        )
        root_ctx = root.context if root is not NO_SPAN else None
        done: Dict[str, Invocation] = {}
        transfers = 0
        transfer_total = 0.0
        finish = start
        for stage in workflow.order:
            spec = self.registry.get(stage.fn)
            target = self.route_fn(spec, f"{workflow.name}/{stage.name}")
            stage_start = start
            parent_ctx = root_ctx
            for dep in stage.after:
                upstream = done[dep]
                ready = upstream.end_us
                if upstream.node != target:
                    payload = stage.payload_bytes
                    if payload is None:
                        payload = self.registry.get(upstream.fn).payload_bytes
                    cost = self.transfer_us(payload)
                    self.obs.record(
                        f"xfer:{dep}->{stage.name}",
                        category="gateway",
                        start_us=upstream.end_us,
                        end_us=upstream.end_us + cost,
                        parent=(
                            upstream.context.wire()
                            if upstream.context is not None
                            else root_ctx
                        ),
                        partition="network",
                        src=upstream.node, dst=target, bytes=payload,
                    )
                    transfers += 1
                    transfer_total += cost
                    ready += cost
                if ready > stage_start or parent_ctx is root_ctx:
                    # Parent under the latest-finishing dependency: the
                    # causal edge the cross-node trace test asserts.
                    parent_ctx = upstream.context or root_ctx
                stage_start = max(stage_start, ready)
            inv = self.invoke(
                stage.fn,
                stage.args,
                key=f"{workflow.name}/{stage.name}",
                parent=(
                    parent_ctx.wire()
                    if parent_ctx is not None and parent_ctx is not root_ctx
                    else root_ctx
                ),
                at_us=stage_start,
            )
            done[stage.name] = inv
            finish = max(finish, inv.end_us)
        self.obs.end(root, ts=finish)
        return WorkflowResult(
            name=workflow.name,
            invocations=done,
            start_us=start,
            end_us=finish,
            cross_node_transfers=transfers,
            transfer_us=transfer_total,
            trace_id=root_ctx.trace_id if root_ctx is not None else None,
            root_context=root_ctx,
        )
