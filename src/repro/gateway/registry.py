"""The function registry: workloads as named, launchable functions.

SHARP-style serverless packaging for the CRONUS workload zoo: a
:class:`FunctionSpec` names a workload, the **launcher** that runs it
against a node's enclave stack, the device class its enclave image needs
(GPU vs NPU — the property DAG stages pin on), and the image id the
cluster's :class:`~repro.cluster.images.ImageRegistry` replicates.

Launchers receive a :class:`FunctionContext` bound to the routed node and
return a plain result dict.  Every runtime a launcher creates through the
context is released when the invocation ends, so function executions
never leak enclaves.  A launcher may set the reserved ``_service_us`` key
to report a virtual-time duration of its own (the LLM engine's makespan);
otherwise the gateway meters the node's platform-clock delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np


class GatewayError(Exception):
    """Unknown function, bad workflow, or no routable node."""


@dataclass(frozen=True)
class FunctionSpec:
    """One registered function."""

    name: str
    launcher: Callable
    device_class: str = "gpu"
    image_id: str = ""
    payload_bytes: int = 4_096
    """Result size used to cost cross-node transfers between DAG stages."""
    description: str = ""


class FunctionContext:
    """What a launcher sees: the routed node's system, with runtime
    bookkeeping so the gateway can release everything afterwards."""

    def __init__(self, node) -> None:
        self.node = node
        self.system = node.system
        self._runtimes: List[object] = []

    def runtime(self, **kwargs):
        rt = self.system.runtime(**kwargs)
        self._runtimes.append(rt)
        return rt

    def close(self) -> None:
        for rt in reversed(self._runtimes):
            try:
                self.system.release(rt)
            except Exception:
                pass  # a crashed launcher already tore the enclaves down
        self._runtimes.clear()


class FunctionRegistry:
    """name -> :class:`FunctionSpec`."""

    def __init__(self) -> None:
        self._fns: Dict[str, FunctionSpec] = {}

    def register_fn(
        self,
        name: str,
        launcher: Callable,
        *,
        device_class: str = "gpu",
        image_id: Optional[str] = None,
        payload_bytes: int = 4_096,
        description: str = "",
    ) -> FunctionSpec:
        spec = FunctionSpec(
            name=name,
            launcher=launcher,
            device_class=device_class,
            image_id=image_id if image_id is not None else f"fn:{name}",
            payload_bytes=payload_bytes,
            description=description,
        )
        self._fns[name] = spec
        return spec

    def get(self, name: str) -> FunctionSpec:
        try:
            return self._fns[name]
        except KeyError:
            raise GatewayError(
                f"no function named {name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._fns)

    def __contains__(self, name: str) -> bool:
        return name in self._fns

    def specs(self) -> List[FunctionSpec]:
        return [self._fns[name] for name in self.names()]


# -- the default function set ----------------------------------------------

def _fn_matmul(ctx: FunctionContext, *, size: int = 16, seed: int = 7) -> Dict[str, object]:
    rt = ctx.runtime(cuda_kernels=("matmul",), owner="gw-matmul")
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((size, size)).astype(np.float32)
    ha = rt.cudaMalloc(a.shape)
    hc = rt.cudaMalloc(a.shape)
    rt.cudaMemcpyH2D(ha, a)
    rt.cudaLaunchKernel("matmul", [ha, ha, hc])
    out = rt.cudaMemcpyD2H(hc)
    rt.cudaFree(hc)
    rt.cudaFree(ha)
    return {"size": size, "correct": bool(np.allclose(out, a @ a, atol=1e-2))}


def _rodinia_launcher(bench: str) -> Callable:
    def launcher(ctx: FunctionContext) -> Dict[str, object]:
        from repro.workloads.rodinia import RODINIA, all_kernels

        rt = ctx.runtime(cuda_kernels=all_kernels(), owner=f"gw-{bench}")
        RODINIA[bench].run(rt)
        return {"bench": bench}

    return launcher


def _fn_dnn_train(
    ctx: FunctionContext, *, epochs: int = 1, batch_size: int = 16, samples: int = 32
) -> Dict[str, object]:
    from repro.workloads.datasets import synthetic_mnist
    from repro.workloads.dnn import TRAINING_KERNELS, lenet, train

    rt = ctx.runtime(cuda_kernels=TRAINING_KERNELS, owner="gw-dnn")
    model = lenet()
    train(rt, model, synthetic_mnist(samples), epochs=epochs, batch_size=batch_size)
    model.free(rt)
    return {"epochs": epochs, "samples": samples}


def _fn_tvm_infer(ctx: FunctionContext, *, seed: int = 42) -> Dict[str, object]:
    from repro.workloads.tvm import compile_graph, conv_lenet_graph, reference

    graph = conv_lenet_graph()
    module = compile_graph(graph)
    rt = ctx.runtime(npu_programs=module.programs, owner="gw-tvm")
    module.deploy(rt)
    x = (
        np.random.default_rng(seed)
        .integers(-8, 8, (1,) + graph.input_shape)
        .astype(np.int8)
    )
    out = module.run(rt, x)
    return {
        "model": "conv_lenet",
        "correct": bool(np.array_equal(out, reference(module, x))),
    }


def _fn_llm_generate(
    ctx: FunctionContext, *, sequences: int = 4, seed: int = 11, max_running: int = 4
) -> Dict[str, object]:
    """The continuous-batching LLM engine as a named function (the
    ROADMAP's "LLM through a SHARP-style gateway" follow-on)."""
    from repro.serve.llm import LLMEngine, llm_arrivals
    from repro.serve.tenants import TenantSpec

    engine = LLMEngine(ctx.system, max_running=max_running)
    tenant = engine.add_tenant(
        TenantSpec("gw-llm", rate_limit_rps=500.0, deadline_us=5_000_000.0)
    )
    report = engine.run(
        llm_arrivals(tenant, engine.config, count=sequences, seed=seed)
    )
    return {
        "sequences": sequences,
        "finished": report.sequences_finished,
        "tokens": report.total_tokens,
        "tokens_per_s": report.tokens_per_s,
        "audit_violations": len(report.audit()),
        "scrub_violations": report.scrub_violations,
        "_service_us": report.makespan_us,
    }


def default_registry() -> FunctionRegistry:
    """Every shipped workload as a named function."""
    registry = FunctionRegistry()
    registry.register_fn(
        "matmul", _fn_matmul, payload_bytes=16 * 16 * 4,
        description="verified square matmul on a GPU mEnclave",
    )
    for bench in ("gaussian", "hotspot", "pathfinder"):
        registry.register_fn(
            f"rodinia.{bench}", _rodinia_launcher(bench),
            description=f"Rodinia {bench} (figure 7 workload)",
        )
    registry.register_fn(
        "dnn.train", _fn_dnn_train, payload_bytes=64 << 10,
        description="LeNet training epochs on a GPU mEnclave (figure 8)",
    )
    registry.register_fn(
        "tvm.infer", _fn_tvm_infer, device_class="npu", payload_bytes=8 << 10,
        description="TVM/VTA quantized inference on an NPU mEnclave (figure 10)",
    )
    registry.register_fn(
        "llm.generate", _fn_llm_generate, payload_bytes=32 << 10,
        description="continuous-batching LLM generation (PR 8 engine)",
    )
    return registry
