"""DAG workflows over registered functions.

A :class:`Workflow` is a named DAG of :class:`Stage`\\ s; each stage
invokes one registered function and lists the stages it depends on.
Because a stage's function carries a device class (GPU vs NPU) and an
image id with its own replica set, stages of one workflow naturally land
on **different nodes** — the gateway inserts a costed cross-node transfer
between dependent stages whenever the producer and consumer nodes differ,
and threads trace context through every hop so the whole DAG renders as
one Perfetto trace.

Validation happens at construction: unique stage names, known
dependencies, and acyclicity (the topological order is computed once and
reused by the executor — deterministic: ready stages run in declaration
order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.gateway.registry import GatewayError


@dataclass(frozen=True)
class Stage:
    """One node of the DAG: run ``fn`` after ``after`` completed."""

    name: str
    fn: str
    args: Optional[Mapping[str, object]] = None
    after: Tuple[str, ...] = ()
    payload_bytes: Optional[int] = None
    """Override of the function's result size for transfer costing."""


class Workflow:
    """A validated DAG of stages."""

    def __init__(self, name: str, stages: Sequence[Stage]) -> None:
        if not stages:
            raise GatewayError(f"workflow {name!r} has no stages")
        self.name = name
        self.stages: Tuple[Stage, ...] = tuple(stages)
        by_name: Dict[str, Stage] = {}
        for stage in self.stages:
            if stage.name in by_name:
                raise GatewayError(
                    f"workflow {name!r}: duplicate stage {stage.name!r}"
                )
            by_name[stage.name] = stage
        for stage in self.stages:
            for dep in stage.after:
                if dep not in by_name:
                    raise GatewayError(
                        f"workflow {name!r}: stage {stage.name!r} depends on "
                        f"unknown stage {dep!r}"
                    )
                if dep == stage.name:
                    raise GatewayError(
                        f"workflow {name!r}: stage {stage.name!r} depends on itself"
                    )
        self.by_name = by_name
        self.order: Tuple[Stage, ...] = self._topo_order()

    def _topo_order(self) -> Tuple[Stage, ...]:
        """Kahn's algorithm, declaration order among ready stages."""
        remaining = {s.name: set(s.after) for s in self.stages}
        order: List[Stage] = []
        done: set = set()
        while remaining:
            ready = [
                s for s in self.stages
                if s.name in remaining and not (remaining[s.name] - done)
            ]
            if not ready:
                cyclic = sorted(remaining)
                raise GatewayError(
                    f"workflow {self.name!r} has a dependency cycle among {cyclic}"
                )
            for stage in ready:
                order.append(stage)
                done.add(stage.name)
                del remaining[stage.name]
        return tuple(order)


@dataclass
class Invocation:
    """One completed function execution."""

    fn: str
    node: str
    start_us: float
    end_us: float
    service_us: float
    result: Dict[str, object]
    context: Optional[object] = None
    """The function span's :class:`~repro.obs.span.SpanContext` (None with
    observability off) — the in-band parent downstream stages link to."""

    @property
    def latency_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class WorkflowResult:
    """Outcome of one :meth:`Gateway.invoke_workflow`."""

    name: str
    invocations: Dict[str, Invocation]
    """stage name -> its invocation, every stage present."""
    start_us: float
    end_us: float
    cross_node_transfers: int
    transfer_us: float
    trace_id: Optional[int] = None
    root_context: Optional[object] = None

    @property
    def makespan_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Distinct nodes the workflow's stages executed on, sorted."""
        return tuple(sorted({inv.node for inv in self.invocations.values()}))

    @property
    def nodes_spanned(self) -> int:
        return len(self.nodes)
