"""repro: a full-system reproduction of CRONUS (MICRO 2022).

CRONUS partitions heterogeneous TEE computation into per-device
MicroEnclaves inside isolated S-EL2 partitions, connected by a streaming
RPC protocol over trusted shared memory, with a proceed-trap failover that
restarts only the faulty partition.  This package implements the whole
stack as a deterministic full-system simulation: the TrustZone hardware
primitives, the secure world (monitor + SPM), MicroOSes and MicroEnclaves,
sRPC, accelerator simulators that really compute, the paper's baselines,
workloads and attack harness.

Quick start::

    from repro import CronusSystem
    import repro.workloads  # registers the CUDA kernel library

    system = CronusSystem()
    rt = system.runtime(cuda_kernels=("matmul",), owner="demo")
    a = rt.cudaMalloc((64, 64))
    ...
    system.release(rt)

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for every regenerated table and figure.
"""

from repro.sim import CostModel, SimClock, Timeline

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "SimClock",
    "Timeline",
    "CronusSystem",
    "HixTrustZone",
    "MonolithicTrustZone",
    "NativeLinux",
    "TestbedConfig",
    "__version__",
]


def __getattr__(name):
    """Lazy system imports keep ``import repro`` light and cycle-free."""
    if name in ("CronusSystem", "HixTrustZone", "MonolithicTrustZone",
                "NativeLinux", "TestbedConfig"):
        import repro.systems as systems

        return getattr(systems, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
