"""Per-tenant SLO accounting.

Tracks every request's fate — admitted, rejected (by reason), completed,
expired, re-queued after a crash — plus completion latencies in simulated
microseconds, and renders the per-tenant summary through
:func:`repro.metrics.report.slo_table`.

Definitions (also in ``docs/serving.md``):

* **latency** — completion time minus arrival time, simulated µs; the
  percentiles use the deterministic nearest-rank method.
* **goodput** — deadline-met completions per simulated second of the
  tenant's own observation window (first arrival to last deadline), so a
  tenant's goodput is a function of its own stream only.
* **rejection rate** — rejected / offered.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.report import slo_table


def nearest_rank(sorted_values: List[float], pct: float) -> float:
    """The nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return 0.0
    rank = -(-pct * len(sorted_values) // 100)  # ceil(pct/100 * n)
    rank = max(1, min(len(sorted_values), int(rank)))
    return sorted_values[rank - 1]


@dataclass
class SLOAccount:
    """Mutable per-tenant tally."""

    tenant: str
    offered: int = 0
    admitted: int = 0
    completed: int = 0
    deadline_met: int = 0
    expired: int = 0
    requeued: int = 0
    duplicates_avoided: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)
    first_arrival_us: Optional[float] = None
    last_deadline_us: float = 0.0

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def percentile(self, pct: float) -> float:
        return nearest_rank(sorted(self.latencies), pct)

    @property
    def p99_us(self) -> float:
        """Numeric p99 latency (the ``p99_us`` row field unformatted) —
        the autoscaler benchmark compares these across fleet modes."""
        return self.percentile(99)

    @property
    def window_us(self) -> float:
        if self.first_arrival_us is None:
            return 0.0
        return max(0.0, self.last_deadline_us - self.first_arrival_us)

    @property
    def goodput_rps(self) -> float:
        window = self.window_us
        if window <= 0:
            return 0.0
        return self.deadline_met / (window / 1e6)

    @property
    def rejection_rate(self) -> float:
        if not self.offered:
            return 0.0
        return self.rejected_total / self.offered

    def row(self) -> Dict[str, object]:
        """One rendered table row (fixed formatting → byte-stable text)."""
        return {
            "tenant": self.tenant,
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "deadline_met": self.deadline_met,
            "expired": self.expired,
            "requeued": self.requeued,
            "rejected": self.rejected_total,
            "reject_rate": f"{self.rejection_rate:.3f}",
            "p50_us": f"{self.percentile(50):.1f}",
            "p95_us": f"{self.percentile(95):.1f}",
            "p99_us": f"{self.percentile(99):.1f}",
            "goodput_rps": f"{self.goodput_rps:.3f}",
        }


class SLOTracker:
    """All tenants' accounts plus the campaign-style deterministic export."""

    def __init__(self) -> None:
        self._accounts: Dict[str, SLOAccount] = {}

    def account(self, tenant: str) -> SLOAccount:
        if tenant not in self._accounts:
            self._accounts[tenant] = SLOAccount(tenant=tenant)
        return self._accounts[tenant]

    # -- recording ---------------------------------------------------------
    def record_offered(self, request) -> None:
        acct = self.account(request.tenant)
        acct.offered += 1
        if acct.first_arrival_us is None or request.arrival_us < acct.first_arrival_us:
            acct.first_arrival_us = request.arrival_us
        acct.last_deadline_us = max(acct.last_deadline_us, request.deadline_us)

    def record_admitted(self, request) -> None:
        self.account(request.tenant).admitted += 1

    def record_rejected(self, request, reason: str) -> None:
        acct = self.account(request.tenant)
        acct.rejected[reason] = acct.rejected.get(reason, 0) + 1

    def record_completed(self, request, completion_us: float) -> None:
        acct = self.account(request.tenant)
        acct.completed += 1
        acct.latencies.append(completion_us - request.arrival_us)
        if completion_us <= request.deadline_us:
            acct.deadline_met += 1

    def record_expired(self, request) -> None:
        self.account(request.tenant).expired += 1

    def record_requeued(self, request) -> None:
        self.account(request.tenant).requeued += 1

    def record_duplicate_avoided(self, request) -> None:
        self.account(request.tenant).duplicates_avoided += 1

    # -- export ------------------------------------------------------------
    def accounts(self) -> Dict[str, SLOAccount]:
        return dict(self._accounts)

    def percentiles(self, pct: float = 99.0) -> Dict[str, float]:
        """tenant -> numeric nearest-rank latency percentile, every tenant
        with at least one completion (deterministic iteration order)."""
        return {
            name: self._accounts[name].percentile(pct)
            for name in sorted(self._accounts)
            if self._accounts[name].latencies
        }

    def table(self) -> str:
        """The per-tenant SLO summary, sorted by tenant name."""
        return slo_table(
            [self._accounts[name].row() for name in sorted(self._accounts)]
        )

    def fingerprint(self) -> str:
        """Digest of the table — byte-identical across same-seed runs."""
        return hashlib.sha256(self.table().encode()).hexdigest()
