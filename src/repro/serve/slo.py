"""Per-tenant SLO accounting.

Tracks every request's fate — admitted, rejected (by reason), completed,
expired, re-queued after a crash — plus completion latencies in simulated
microseconds, and renders the per-tenant summary through
:func:`repro.metrics.report.slo_table`.

Definitions (also in ``docs/serving.md``):

* **latency** — completion time minus arrival time, simulated µs; the
  percentiles use the deterministic nearest-rank method.
* **goodput** — deadline-met completions per simulated second of the
  tenant's own observation window (first arrival to last deadline), so a
  tenant's goodput is a function of its own stream only.
* **rejection rate** — rejected / offered.

Token-serving workloads additionally record per-token latencies:

* **TTFT** — time-to-first-token: first decoded token's emission time
  minus the request's arrival time (includes queueing + prefill).
* **ITL** — inter-token latency: the gap between consecutive token
  emissions of one sequence (excludes the first token).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional

from repro.metrics.report import slo_table, token_slo_table


def nearest_rank(sorted_values: List[float], pct: float) -> float:
    """The nearest-rank percentile (deterministic, no interpolation).

    The rank is ``ceil(pct/100 * n)`` computed *exactly*: ``pct`` is read
    as the decimal it prints as (``Fraction(str(pct))``), so non-integer
    percentiles like 99.9 never pick up a one-off rank from binary
    floating-point error (``99.9 * 1000 / 100`` is 999.0000000000001 in
    floats; the old ``-(-pct * n // 100)`` trick then ceils to 1000).
    """
    if not sorted_values:
        return 0.0
    n = len(sorted_values)
    frac = Fraction(str(pct))
    rank = -((-n * frac.numerator) // (100 * frac.denominator))
    rank = max(1, min(n, rank))
    return sorted_values[rank - 1]


@dataclass
class SLOAccount:
    """Mutable per-tenant tally."""

    tenant: str
    offered: int = 0
    admitted: int = 0
    completed: int = 0
    deadline_met: int = 0
    expired: int = 0
    requeued: int = 0
    duplicates_avoided: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)
    first_arrival_us: Optional[float] = None
    last_deadline_us: float = 0.0
    # -- per-token accounting (LLM serving; zero-cost for other workloads)
    sequences: int = 0
    finished_sequences: int = 0
    preempted_sequences: int = 0
    reprefills: int = 0
    tokens: int = 0
    ttft_us: List[float] = field(default_factory=list)
    itl_us: List[float] = field(default_factory=list)
    first_token_us: Optional[float] = None
    last_token_us: float = 0.0

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def percentile(self, pct: float) -> float:
        return nearest_rank(sorted(self.latencies), pct)

    @property
    def p99_us(self) -> float:
        """Numeric p99 latency (the ``p99_us`` row field unformatted) —
        the autoscaler benchmark compares these across fleet modes."""
        return self.percentile(99)

    @property
    def window_us(self) -> float:
        if self.first_arrival_us is None:
            return 0.0
        return max(0.0, self.last_deadline_us - self.first_arrival_us)

    @property
    def goodput_rps(self) -> float:
        window = self.window_us
        if window <= 0:
            return 0.0
        return self.deadline_met / (window / 1e6)

    @property
    def rejection_rate(self) -> float:
        if not self.offered:
            return 0.0
        return self.rejected_total / self.offered

    def row(self) -> Dict[str, object]:
        """One rendered table row (fixed formatting → byte-stable text)."""
        return {
            "tenant": self.tenant,
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "deadline_met": self.deadline_met,
            "expired": self.expired,
            "requeued": self.requeued,
            "rejected": self.rejected_total,
            "reject_rate": f"{self.rejection_rate:.3f}",
            "p50_us": f"{self.percentile(50):.1f}",
            "p95_us": f"{self.percentile(95):.1f}",
            "p99_us": f"{self.percentile(99):.1f}",
            "goodput_rps": f"{self.goodput_rps:.3f}",
        }

    @property
    def tokens_per_s(self) -> float:
        """Decode throughput over the tenant's own token-emission window."""
        window = self.last_token_us - (self.first_token_us or 0.0)
        if self.first_token_us is None or window <= 0:
            return 0.0
        return self.tokens / (window / 1e6)

    def ttft_percentile(self, pct: float) -> float:
        return nearest_rank(sorted(self.ttft_us), pct)

    def itl_percentile(self, pct: float) -> float:
        return nearest_rank(sorted(self.itl_us), pct)

    def token_row(self) -> Dict[str, object]:
        """One rendered *token* table row (fixed formatting → byte-stable)."""
        return {
            "tenant": self.tenant,
            "sequences": self.sequences,
            "finished": self.finished_sequences,
            "preempted": self.preempted_sequences,
            "reprefills": self.reprefills,
            "tokens": self.tokens,
            "ttft_p50_us": f"{self.ttft_percentile(50):.1f}",
            "ttft_p99_us": f"{self.ttft_percentile(99):.1f}",
            "itl_p50_us": f"{self.itl_percentile(50):.1f}",
            "itl_p99_us": f"{self.itl_percentile(99):.1f}",
            "tokens_per_s": f"{self.tokens_per_s:.3f}",
        }


class SLOTracker:
    """All tenants' accounts plus the campaign-style deterministic export."""

    def __init__(self) -> None:
        self._accounts: Dict[str, SLOAccount] = {}

    def account(self, tenant: str) -> SLOAccount:
        if tenant not in self._accounts:
            self._accounts[tenant] = SLOAccount(tenant=tenant)
        return self._accounts[tenant]

    # -- recording ---------------------------------------------------------
    def record_offered(self, request) -> None:
        acct = self.account(request.tenant)
        acct.offered += 1
        if acct.first_arrival_us is None or request.arrival_us < acct.first_arrival_us:
            acct.first_arrival_us = request.arrival_us
        acct.last_deadline_us = max(acct.last_deadline_us, request.deadline_us)

    def record_admitted(self, request) -> None:
        self.account(request.tenant).admitted += 1

    def record_rejected(self, request, reason: str) -> None:
        acct = self.account(request.tenant)
        acct.rejected[reason] = acct.rejected.get(reason, 0) + 1

    def record_completed(self, request, completion_us: float) -> None:
        acct = self.account(request.tenant)
        acct.completed += 1
        acct.latencies.append(completion_us - request.arrival_us)
        if completion_us <= request.deadline_us:
            acct.deadline_met += 1

    def record_expired(self, request) -> None:
        self.account(request.tenant).expired += 1

    def record_requeued(self, request) -> None:
        self.account(request.tenant).requeued += 1

    def record_duplicate_avoided(self, request) -> None:
        self.account(request.tenant).duplicates_avoided += 1

    # -- per-token recording (LLM serving) --------------------------------
    def record_sequence(self, request) -> None:
        self.account(request.tenant).sequences += 1

    def record_sequence_finished(self, request) -> None:
        self.account(request.tenant).finished_sequences += 1

    def record_sequence_preempted(self, request) -> None:
        """The sequence's partition crashed mid-decode; its KV pages were
        scrubbed and it will be re-prefilled (exactly once)."""
        self.account(request.tenant).preempted_sequences += 1

    def record_reprefill(self, request) -> None:
        self.account(request.tenant).reprefills += 1

    def record_token(
        self, request, emit_us: float, *, prev_token_us: Optional[float]
    ) -> None:
        """One decoded token at virtual time ``emit_us``.

        ``prev_token_us`` is the same sequence's previous emission (None
        for the first token): first tokens record TTFT against arrival,
        later tokens record the inter-token gap.
        """
        acct = self.account(request.tenant)
        acct.tokens += 1
        if acct.first_token_us is None or emit_us < acct.first_token_us:
            acct.first_token_us = emit_us
        acct.last_token_us = max(acct.last_token_us, emit_us)
        if prev_token_us is None:
            acct.ttft_us.append(emit_us - request.arrival_us)
        else:
            acct.itl_us.append(emit_us - prev_token_us)

    # -- export ------------------------------------------------------------
    def accounts(self) -> Dict[str, SLOAccount]:
        return dict(self._accounts)

    def percentiles(self, pct: float = 99.0) -> Dict[str, float]:
        """tenant -> numeric nearest-rank latency percentile, every tenant
        with at least one completion (deterministic iteration order)."""
        return {
            name: self._accounts[name].percentile(pct)
            for name in sorted(self._accounts)
            if self._accounts[name].latencies
        }

    def table(self) -> str:
        """The per-tenant SLO summary, sorted by tenant name."""
        return slo_table(
            [self._accounts[name].row() for name in sorted(self._accounts)]
        )

    def fingerprint(self) -> str:
        """Digest of the table — byte-identical across same-seed runs."""
        return hashlib.sha256(self.table().encode()).hexdigest()

    def token_table(self) -> str:
        """The per-tenant token SLO summary (TTFT/ITL/tokens-per-second),
        sorted by tenant name.  Separate from :meth:`table` so request-
        level fingerprints recorded by earlier benchmarks never move."""
        return token_slo_table(
            [self._accounts[name].token_row() for name in sorted(self._accounts)]
        )

    def token_fingerprint(self) -> str:
        """Digest of the token table — byte-identical across replays."""
        return hashlib.sha256(self.token_table().encode()).hexdigest()
