"""Continuous-batching LLM serving on paged enclave KV memory.

The :class:`LLMEngine` turns a booted
:class:`~repro.systems.cronus.CronusSystem` into a token-granular
inference frontend for the :mod:`repro.workloads.llm` workload:

* **Admission** reuses the serve-layer gates (token bucket, queue bound,
  memory quota) — an :class:`LLMRequest`'s ``memory_bytes`` is its paged
  KV footprint, so the quota now bounds exactly the partition pages the
  sequence will pin.
* **Batching** is the :class:`~repro.serve.batcher.ContinuousBatcher`:
  each device decodes its resident sequences in lock-step iterations;
  finished sequences are evicted at the boundary they finish on and
  waiting sequences admitted into the freed slots (``continuous``), or
  the device drains fully before admitting again (``static`` baseline).
* **KV memory** is a per-device :class:`~repro.workloads.llm.PagedKVCache`
  over SPM stage-2 pages; every emitted token writes its stamp through
  the partition's TLB fast lane.
* **Token streaming**: each emitted token is streamed to the client as
  one async sRPC record on a dedicated stream of the device's long-lived
  runtime channel — carrying in-band trace context when observability is
  on, exactly like every other sRPC record.
* **Crash-under-decode** (the paper's fault-isolation story with
  *stateful* consequences): a partition crash scrubs and reclaims the
  victims' KV pages (proceed-trap clear step — audited byte-by-byte
  here), the cache generation check drops the stale block tables, and
  each mid-decode victim is **re-prefilled exactly once** on a surviving
  (or the recovered) partition.  Already-streamed tokens stand; decode
  resumes after the re-prefill.

Time follows the frontend's dual-time doctrine: the engine runs a
virtual event timeline (arrivals, iteration boundaries, crashes,
recoveries) that all SLO metrics use, while the platform clock keeps
metering the real execution costs of the sRPC/KV machinery underneath.
Virtual durations come from :class:`~repro.workloads.llm.LLMCostModel`,
calibrated against the same GPU constants as the kernel timing model.
"""

from __future__ import annotations

import heapq
import sys
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.dispatch.dispatcher import DispatchError, NoReadyPartition
from repro.faults import injector as _faults
from repro.obs.span import NO_SPAN
from repro.rpc.channel import SRPCPeerFailure
from repro.secure.spm import SPMError
from repro.serve.admission import AdmissionController, AdmissionDecision, Request
from repro.serve.batcher import ContinuousBatcher, MODE_CONTINUOUS
from repro.serve.placement import SpatialPlacer
from repro.serve.slo import SLOTracker
from repro.serve.tenants import Tenant, TenantRegistry, TenantSpec
from repro.workloads.llm import LLMConfig, LLMCostModel, PagedKVCache

_DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}
_ARRIVAL_ORDER = attrgetter("arrival_us", "rid")

#: Stream id token records ride on (stream 0 carries the cuda* mecalls).
TOKEN_STREAM = 1


class LLMServingError(Exception):
    """LLM frontend misuse (unknown device, non-LLM request)."""


@dataclass(**_DATACLASS_SLOTS)
class LLMRequest(Request):
    """One autoregressive sequence offered to the LLM frontend.

    ``memory_bytes`` — the admission quota charge — is the sequence's
    *paged KV footprint* at full context (``kv_bytes``), computed by the
    arrival generator from the engine's :class:`LLMConfig`: whole stage-2
    pages, exactly what the partition allocator will hand out.
    """

    prompt_tokens: int = 16
    max_new_tokens: int = 16
    kv_bytes: int = 0

    @property
    def memory_bytes(self) -> int:
        return self.kv_bytes


class SequenceState:
    """One admitted sequence's life on the engine."""

    __slots__ = (
        "request",
        "device",
        "tokens_emitted",
        "last_token_us",
        "needs_prefill",
        "prefills",
        "reprefills",
        "victimized",
        "finished",
        "finish_us",
    )

    def __init__(self, request: LLMRequest) -> None:
        self.request = request
        self.device: Optional[str] = None
        self.tokens_emitted = 0
        self.last_token_us: Optional[float] = None
        self.needs_prefill = True
        self.prefills = 0
        self.reprefills = 0
        self.victimized = 0
        """Times a crash destroyed this sequence's KV mid-decode."""
        self.finished = False
        self.finish_us = 0.0

    @property
    def context_len(self) -> int:
        """Tokens the KV cache must hold before the next decode step."""
        return self.request.prompt_tokens + self.tokens_emitted

    def __repr__(self) -> str:
        return (
            f"SequenceState({self.request.rid!r}, device={self.device!r}, "
            f"emitted={self.tokens_emitted}/{self.request.max_new_tokens})"
        )


def llm_arrivals(
    tenant: Tenant,
    config: LLMConfig,
    *,
    count: int,
    seed: int,
    start_us: float = 0.0,
    mean_interarrival_us: Optional[float] = None,
    prompt_tokens: Tuple[int, int] = (8, 32),
    max_new_tokens: Tuple[int, int] = (8, 32),
) -> List[LLMRequest]:
    """A deterministic open-loop LLM arrival stream for one tenant.

    Mirrors :func:`repro.serve.admission.open_loop_arrivals`: exponential
    interarrivals from the tenant's own seeded RNG, with prompt/decode
    lengths drawn uniformly from the given inclusive ranges.  ``kv_bytes``
    is the full-context paged footprint under ``config``.
    """
    import random

    spec = tenant.spec
    mean = mean_interarrival_us
    if mean is None:
        mean = 1e6 / spec.rate_limit_rps
    rng = random.Random(seed)
    tenant_key = sys.intern(spec.name)
    device_key = sys.intern(spec.device_name) if spec.device_name else None
    out: List[LLMRequest] = []
    t = start_us
    for i in range(count):
        t += rng.expovariate(1.0 / mean)
        prompt = rng.randint(*prompt_tokens)
        decode = rng.randint(*max_new_tokens)
        out.append(
            LLMRequest(
                tenant=tenant_key,
                rid=f"{tenant_key}-llm-{i:07d}",
                arrival_us=t,
                deadline_us=t + spec.deadline_us,
                kind="llm",
                device_name=device_key,
                data_seed=rng.randrange(2**32),
                prompt_tokens=prompt,
                max_new_tokens=decode,
                kv_bytes=config.kv_footprint_bytes(prompt + decode),
            )
        )
    return out


class _TokenStreamer:
    """One device's long-lived runtime used purely for token streaming.

    A small device-side mailbox buffer is allocated once per partition
    generation; each emitted token then streams as one async
    ``cudaMemcpyH2D`` record on :data:`TOKEN_STREAM` — a ~tens-of-bytes
    sRPC enqueue with no partition switch, carrying in-band trace context
    when observability is enabled.  A crash abandons the generation; the
    next stream lazily rebuilds against the recovered partition.
    """

    _MAILBOX_SHAPE = (4,)

    def __init__(self, engine: "LLMEngine", device_name: str) -> None:
        self._engine = engine
        self.device_name = device_name
        self.runtime = None
        self._owner: Optional[str] = None
        self._mailbox: Optional[int] = None
        self.generation = 0
        self.tokens_streamed = 0
        self.stream_failures = 0

    def _ensure(self):
        if self.runtime is None:
            self.generation += 1
            self._owner = f"llm-{self.device_name}-g{self.generation}"
            self.runtime = self._engine.system.runtime(
                cuda_kernels=self._engine.kernels,
                gpu_name=self.device_name,
                owner=self._owner,
            )
            self._mailbox = self.runtime.cudaMalloc(self._MAILBOX_SHAPE)
        return self.runtime

    def stream_token(self, rid: str, index: int) -> None:
        """Stream one token record (async, in-band trace context)."""
        try:
            rt = self._ensure()
            payload = np.full(
                self._MAILBOX_SHAPE, float(index % 65536 + 1), dtype=np.float32
            )
            rt.gpu_channel.call(
                "cudaMemcpyH2D", self._mailbox, payload, stream=TOKEN_STREAM
            )
            self.tokens_streamed += 1
        except (SRPCPeerFailure, NoReadyPartition, SPMError, DispatchError):
            # The partition died under us; the crash path re-prefills the
            # victims — dropping this in-flight record mirrors the ring
            # scrub (never replay records into a reloaded partition).
            self.stream_failures += 1
            self.abandon()

    def flush(self) -> None:
        """Synchronize the stream at a sequence boundary (client EOF)."""
        if self.runtime is None:
            return
        try:
            self.runtime.cudaDeviceSynchronize()
        except (SRPCPeerFailure, NoReadyPartition, SPMError, DispatchError):
            self.stream_failures += 1
            self.abandon()

    def abandon(self) -> None:
        runtime, self.runtime = self.runtime, None
        self._mailbox = None
        if runtime is not None:
            try:
                runtime.close()
            except Exception:
                pass  # the peer is gone; there is nothing left to close
        if self._owner is not None:
            try:
                self._engine.system.application(self._owner).shutdown()
            except Exception:
                pass


@dataclass
class LLMReport:
    """Outcome of one :meth:`LLMEngine.run`."""

    token_table: str
    token_fingerprint: str
    slo_table: str
    slo_fingerprint: str
    makespan_us: float
    total_tokens: int
    sequences_finished: int
    sequences_expired: int
    sequences_preempted: int
    reprefills: int
    crashes: Tuple[str, ...]
    scrub_violations: int
    """Non-zero bytes found in victim KV pages after crash recovery —
    must be 0 (the proceed-trap clear step scrubs before reclaiming)."""
    kv_leaks: int
    """Freshly allocated KV blocks containing another sequence's data —
    must be 0 (cross-sequence KV leakage)."""
    iterations: int
    batcher_stats: Dict[str, object]
    kv_stats: Dict[str, Dict[str, int]]
    streamer_stats: Dict[str, Dict[str, int]]
    completed: Dict[str, float] = field(default_factory=dict)
    admitted: Set[str] = field(default_factory=set)
    prefill_audit: Dict[str, Tuple[int, int, int]] = field(default_factory=dict)
    """rid -> (prefills, reprefills, victimized) for every admitted seq."""

    @property
    def tokens_per_s(self) -> float:
        if self.makespan_us <= 0:
            return 0.0
        return self.total_tokens / (self.makespan_us / 1e6)

    def audit(self) -> List[str]:
        """Invariant audit; returns violation descriptions (empty = clean).

        * every admitted sequence finished or was reported expired;
        * **exactly-once re-prefill**: each sequence prefilled once plus
          once per time it was victimized (never zero, never twice);
        * zero scrub violations and zero cross-sequence KV leaks.
        """
        out: List[str] = []
        terminal = self.sequences_finished + self.sequences_expired
        if terminal != len(self.admitted):
            out.append(
                f"{len(self.admitted)} admitted but {terminal} terminal sequences"
            )
        for rid in sorted(self.prefill_audit):
            prefills, reprefills, victimized = self.prefill_audit[rid]
            if rid in self.completed and prefills != 1 + victimized:
                out.append(
                    f"{rid}: {prefills} prefills for {victimized} victimizations "
                    f"(want exactly {1 + victimized})"
                )
            if reprefills != max(0, prefills - 1):
                out.append(
                    f"{rid}: reprefills {reprefills} != prefills-1 {prefills - 1}"
                )
        if self.scrub_violations:
            out.append(f"{self.scrub_violations} unscrubbed KV bytes after crash")
        if self.kv_leaks:
            out.append(f"{self.kv_leaks} cross-sequence KV leaks")
        return out


class LLMEngine:
    """Token-granular serving frontend over a CronusSystem."""

    def __init__(
        self,
        system,
        *,
        config: Optional[LLMConfig] = None,
        max_running: int = 8,
        mode: str = MODE_CONTINUOUS,
        stream_tokens: bool = True,
        kernels: Tuple[str, ...] = ("matmul",),
        telemetry: Optional[object] = None,
    ) -> None:
        self.system = system
        self.config = config if config is not None else LLMConfig()
        self.cost = LLMCostModel(system.platform.costs, self.config)
        self.kernels = kernels
        self.stream_tokens = stream_tokens
        self.registry = TenantRegistry()
        self.admission = AdmissionController(self.registry)
        self.batcher = ContinuousBatcher(max_running=max_running, mode=mode)
        self.placer = SpatialPlacer(system.dispatcher, incremental=True)
        self.slo = SLOTracker()
        self._caches: Dict[str, PagedKVCache] = {}
        self._streamers: Dict[str, _TokenStreamer] = {}
        self._sequences: Dict[str, SequenceState] = {}
        self._step_end: Dict[str, float] = {}
        self._step_heap: List[Tuple[float, str]] = []
        self._down_until: Dict[str, float] = {}
        self._down_heap: List[Tuple[float, str]] = []
        self._parked: List[SequenceState] = []
        self._admitted: Set[str] = set()
        self._completed: Dict[str, float] = {}
        self._expired: Set[str] = set()
        self._now = 0.0
        self.crashes: List[str] = []
        self.scrub_violations = 0
        self.iterations = 0
        self._obs = system.platform.obs
        self._metrics = system.platform.metrics
        self._sequence_spans: Dict[str, object] = {}
        """rid -> open sequence root span (virtual-time axis)."""
        # -- telemetry pipeline (inert when None) --------------------------
        self.telemetry = telemetry
        self._tel_source = None
        self._next_scrape_us: Optional[float] = None
        if telemetry is not None:
            self._tel_source = telemetry.attach(
                system, slo=self.slo, extra=self._telemetry_extra
            )

    # -- tenants -----------------------------------------------------------
    def add_tenant(self, spec: TenantSpec) -> Tenant:
        return self.registry.register(spec)

    # -- telemetry ---------------------------------------------------------
    def bind_telemetry(self, source) -> None:
        """Bind an externally owned telemetry source (the owner drives
        the scrapes); see :meth:`ServingSystem.bind_telemetry`."""
        self._tel_source = source

    def _telemetry_extra(self) -> Dict[str, float]:
        """Cumulative safety counters scraped alongside the registry —
        these feed the scrub-violation and KV-leak burn-rate rules."""
        return {
            "llm/scrub_violations": float(self.scrub_violations),
            "llm/kv_leaks": float(
                sum(c.leaked_blocks for c in self._caches.values())
            ),
        }

    def _process_scrape(self) -> None:
        if self.telemetry is None or self._next_scrape_us is None:
            return
        interval = self.telemetry.scrape_interval_us
        while self._next_scrape_us <= self._now:
            self.telemetry.scrape(self._next_scrape_us)
            self._next_scrape_us += interval

    # -- per-device state --------------------------------------------------
    def _cache(self, device: str) -> PagedKVCache:
        cache = self._caches.get(device)
        if cache is None:
            partition = self.system.spm.partition_for_device(device)
            cache = self._caches[device] = PagedKVCache(
                self.system.spm, partition, self.config
            )
        return cache

    def _streamer(self, device: str) -> _TokenStreamer:
        streamer = self._streamers.get(device)
        if streamer is None:
            streamer = self._streamers[device] = _TokenStreamer(self, device)
        return streamer

    def _is_ready(self, mos) -> bool:
        return self._down_until.get(mos.partition.device.name, self._now) <= self._now

    # -- admission + placement ---------------------------------------------
    def offer(self, request: LLMRequest) -> AdmissionDecision:
        """Admit (and place) or reject one sequence at its arrival time."""
        if request.kind != "llm":
            raise LLMServingError(
                f"request {request.rid!r} has kind {request.kind!r}, want 'llm'"
            )
        self.slo.record_offered(request)
        decision = self.admission.offer(request, request.arrival_us)
        if not decision.admitted:
            self.slo.record_rejected(request, decision.reason)
            if self._metrics.enabled:
                self._metrics.counter("llm", "rejected").inc()
            return decision
        self.slo.record_admitted(request)
        self.slo.record_sequence(request)
        self._admitted.add(request.rid)
        sequence = SequenceState(request)
        self._sequences[request.rid] = sequence
        if self._obs.enabled:
            # Sequence roots live on the virtual event axis, like the
            # frontend's request roots (timestamps passed explicitly).
            span = self._obs.begin(
                "llm.sequence", category="serve", detached=True,
                ts=request.arrival_us, rid=request.rid, tenant=request.tenant,
                prompt=request.prompt_tokens, max_new=request.max_new_tokens,
            )
            if span is not NO_SPAN:
                self._sequence_spans[request.rid] = span
        if self._metrics.enabled:
            self._metrics.counter("llm", "sequences").inc()
        self._place(sequence)
        return decision

    def _place(self, sequence: SequenceState) -> None:
        try:
            mos = self.placer.place(
                sequence.request, self.batcher.depth, is_ready=self._is_ready
            )
        except NoReadyPartition:
            self._parked.append(sequence)
            if self._obs.enabled:
                self._obs.event(
                    "llm.park", category="serve", ts=self._now,
                    rid=sequence.request.rid,
                )
            return
        device = mos.partition.device.name
        sequence.device = device
        self.batcher.add(device, sequence)
        self._start_iteration(device)

    # -- the decode loop ---------------------------------------------------
    def _start_iteration(self, device: str) -> None:
        """Admit waiting sequences at the boundary and schedule the next
        iteration's completion instant (no-op if one is in flight or the
        device is inside its recovery window)."""
        if device in self._step_end or self._down_until.get(device, 0.0) > self._now:
            return
        admitted = self.batcher.admit(device)
        running = self.batcher.running(device)
        if not running:
            return
        cache = self._cache(device)
        cache.ensure_generation()
        prefill_us = 0.0
        for sequence in admitted:
            sequence.device = device
            if sequence.needs_prefill:
                prefill_us += self.cost.prefill_us(sequence.context_len)
                self._prefill(cache, sequence)
        duration = prefill_us + self.cost.decode_step_us(
            [s.context_len for s in running]
        )
        end = self._now + duration
        self._step_end[device] = end
        heapq.heappush(self._step_heap, (end, device))
        if self._metrics.enabled:
            self._metrics.histogram("llm", "iteration_us").observe(duration)

    def _prefill(self, cache: PagedKVCache, sequence: SequenceState) -> None:
        """Fill the sequence's KV for its whole current context (prompt
        plus any tokens already emitted before a crash destroyed the KV)."""
        request = sequence.request
        for _ in range(sequence.context_len):
            cache.append_token(request.rid)
        sequence.prefills += 1
        sequence.needs_prefill = False
        if sequence.prefills > 1:
            sequence.reprefills += 1
            self.slo.record_reprefill(request)
            if self._obs.enabled:
                self._obs.event(
                    "llm.reprefill", category="serve", ts=self._now,
                    rid=request.rid, device=cache.partition.device.name,
                    context=sequence.context_len,
                )
            if self._metrics.enabled:
                self._metrics.counter("llm", "reprefills").inc()

    def _finish_iteration(self, device: str) -> None:
        """One decode boundary: every resident sequence emits one token."""
        del self._step_end[device]
        if _faults.ACTIVE is not None:
            partition = self.system.spm.partition_for_device(device)
            restarts = partition.restarts
            _faults.ACTIVE.fire("llm.decode.step", default_target=device)
            if (
                partition.restarts != restarts
                or device in self._down_until
            ):
                # The injected crash killed this very partition: the
                # iteration dies with it (no tokens emitted), and the
                # injector's crash handler (or our own crash path) owns
                # the victim re-prefill bookkeeping.
                if device not in self._down_until:
                    self.crash_device(device)
                return
        self.iterations += 1
        cache = self._cache(device)
        now = self._now
        streamer = self._streamer(device) if self.stream_tokens else None
        for sequence in self.batcher.running(device):
            request = sequence.request
            index = cache.append_token(request.rid)
            self.slo.record_token(
                request, now, prev_token_us=sequence.last_token_us
            )
            sequence.tokens_emitted += 1
            sequence.last_token_us = now
            if streamer is not None:
                streamer.stream_token(request.rid, index)
            if sequence.tokens_emitted >= request.max_new_tokens:
                self._finish_sequence(device, cache, streamer, sequence, now)
        self.placer.mark_dirty(device)
        self._start_iteration(device)

    def _finish_sequence(
        self,
        device: str,
        cache: PagedKVCache,
        streamer: Optional[_TokenStreamer],
        sequence: SequenceState,
        now: float,
    ) -> None:
        request = sequence.request
        sequence.finished = True
        sequence.finish_us = now
        self.batcher.finish(device, sequence)
        cache.release(request.rid)
        if streamer is not None:
            streamer.flush()
        self._completed[request.rid] = now
        self.slo.record_completed(request, now)
        self.slo.record_sequence_finished(request)
        self.admission.settle(request)
        span = self._sequence_spans.pop(request.rid, NO_SPAN)
        self._obs.end(
            span, ts=now, outcome="finished", tokens=sequence.tokens_emitted
        )
        if self._tel_source is not None and span.context is not None:
            self._tel_source.request_done(
                span.context.trace_id,
                latency_us=now - request.arrival_us,
                outcome="completed",
                tenant=request.tenant,
            )
        if self._metrics.enabled:
            self._metrics.counter("llm", "finished").inc()

    # -- failure handling --------------------------------------------------
    def crash_device(self, device: str) -> float:
        """Crash ``device``'s partition mid-decode (background recovery).

        The crash-under-decode story end to end: snapshot the victims' KV
        pages, fail the partition (recovery scrubs and reclaims them),
        audit the scrub byte-by-byte, drop the stale block tables, and
        re-place every victim with exactly one re-prefill owed.
        """
        if self.system.moses.get(device) is None:
            raise LLMServingError(f"no partition manages device {device!r}")
        if device in self._down_until:
            return self._down_until[device]
        cache = self._caches.get(device)
        victim_pages: List[int] = []
        if cache is not None and not cache.stale:
            for rid in cache.sequences():
                victim_pages.extend(cache.pages_of(rid))
        rec = self.system.fail_partition(device, background=True)
        ready_at = self._now + rec.total_us
        self._down_until[device] = ready_at
        heapq.heappush(self._down_heap, (ready_at, device))
        self.crashes.append(device)
        self.placer.mark_dirty(device)
        self._step_end.pop(device, None)  # the in-flight iteration died
        # Scrub audit: recovery's clear step ran synchronously above, so
        # every KV page the victims held must already read as zeros.
        memory = self.system.platform.memory
        for page in victim_pages:
            if any(bytes(memory.page_view(page))):
                self.scrub_violations += 1
        if cache is not None:
            cache.ensure_generation()
        streamer = self._streamers.get(device)
        if streamer is not None:
            streamer.abandon()
        victims = self.batcher.evict_device(device)
        if self._obs.enabled:
            self._obs.event(
                "llm.crash", category="serve", ts=self._now, device=device,
                ready_at_us=ready_at, victims=len(victims),
            )
        if self._metrics.enabled:
            self._metrics.counter("llm", "crashes").inc()
        for sequence in victims:
            request = sequence.request
            self.slo.record_requeued(request)
            span = self._sequence_spans.get(request.rid)
            if (
                self._tel_source is not None
                and span is not None
                and span.context is not None
            ):
                # The sequence crossed a crash: pin it in the sampler.
                self._tel_source.note_recovery(span.context.trace_id)
            if not sequence.needs_prefill:
                # Mid-decode victim: its KV died with the partition.  It
                # owes exactly one re-prefill before decoding again.
                sequence.victimized += 1
                sequence.needs_prefill = True
                self.slo.record_sequence_preempted(request)
            sequence.device = None
            self._place(sequence)
        return ready_at

    def _process_recoveries(self) -> None:
        heap = self._down_heap
        recovered: List[str] = []
        while heap and heap[0][0] <= self._now:
            until, device = heapq.heappop(heap)
            if self._down_until.get(device) == until:
                del self._down_until[device]
                recovered.append(device)
        if not recovered:
            return
        for device in recovered:
            self.placer.mark_dirty(device)
        if self._parked:
            parked, self._parked = self._parked, []
            for sequence in parked:
                self._place(sequence)
        for device in recovered:
            self._start_iteration(device)

    # -- the event loop ----------------------------------------------------
    def run(
        self,
        arrivals: Iterable[LLMRequest],
        *,
        crash_events: Sequence[Tuple[float, str]] = (),
    ) -> LLMReport:
        """Serve an open-loop sequence stream to completion.

        ``crash_events`` is a list of ``(time_us, device)`` partition
        crashes injected mid-decode.  Event phases at one instant follow
        the frontend's fixed order: recoveries → iteration boundaries →
        arrivals → crashes.
        """
        pending = sorted(arrivals, key=_ARRIVAL_ORDER)
        crash_queue = sorted(crash_events)
        if self.telemetry is not None:
            self._next_scrape_us = self._now + self.telemetry.scrape_interval_us
        ai = ci = 0
        n_pending, n_crash = len(pending), len(crash_queue)
        while True:
            now = self._next_event_time(pending, ai, crash_queue, ci)
            if now is None:
                break
            if now > self._now:
                self._now = now
            self._process_recoveries()
            step_heap = self._step_heap
            while step_heap and step_heap[0][0] <= self._now:
                end, device = heapq.heappop(step_heap)
                if self._step_end.get(device) == end:
                    self._finish_iteration(device)
            while ai < n_pending and pending[ai].arrival_us <= self._now:
                self.offer(pending[ai])
                ai += 1
            while ci < n_crash and crash_queue[ci][0] <= self._now:
                self.crash_device(crash_queue[ci][1])
                ci += 1
            self._process_scrape()
        # Parked sequences with no recovery pending can never decode
        # (every partition they may use is gone): report them expired.
        for sequence in self._parked:
            request = sequence.request
            self._expired.add(request.rid)
            self.slo.record_expired(request)
            self.admission.settle(request)
            span = self._sequence_spans.pop(request.rid, NO_SPAN)
            self._obs.end(span, ts=self._now, outcome="expired")
            if self._tel_source is not None and span.context is not None:
                self._tel_source.request_done(
                    span.context.trace_id,
                    latency_us=self._now - request.arrival_us,
                    outcome="expired",
                    tenant=request.tenant,
                )
        self._parked.clear()
        if self.telemetry is not None:
            self.telemetry.scrape(self._now)
            self._next_scrape_us = None
        return self.report()

    def _next_event_time(
        self,
        pending: Sequence[LLMRequest],
        ai: int,
        crash_queue: Sequence[Tuple[float, str]],
        ci: int,
    ) -> Optional[float]:
        t: Optional[float] = None
        heap = self._down_heap
        while heap:
            until, device = heap[0]
            if self._down_until.get(device) == until:
                t = until
                break
            heapq.heappop(heap)
        step_heap = self._step_heap
        while step_heap:
            end, device = step_heap[0]
            if self._step_end.get(device) == end:
                if t is None or end < t:
                    t = end
                break
            heapq.heappop(step_heap)
        if ai < len(pending):
            arrival = pending[ai].arrival_us
            if t is None or arrival < t:
                t = arrival
        if ci < len(crash_queue):
            crash = crash_queue[ci][0]
            if t is None or crash < t:
                t = crash
        # Scrapes subdivide waits; they never extend the makespan.
        scrape = self._next_scrape_us
        if scrape is not None and t is not None and scrape < t:
            t = scrape
        return t

    # -- reporting ---------------------------------------------------------
    def report(self) -> LLMReport:
        accounts = self.slo.accounts()
        total_tokens = sum(a.tokens for a in accounts.values())
        finished = sum(a.finished_sequences for a in accounts.values())
        preempted = sum(a.preempted_sequences for a in accounts.values())
        reprefills = sum(a.reprefills for a in accounts.values())
        kv_leaks = sum(c.leaked_blocks for c in self._caches.values())
        return LLMReport(
            token_table=self.slo.token_table(),
            token_fingerprint=self.slo.token_fingerprint(),
            slo_table=self.slo.table(),
            slo_fingerprint=self.slo.fingerprint(),
            makespan_us=self._now,
            total_tokens=total_tokens,
            sequences_finished=finished,
            sequences_expired=len(self._expired),
            sequences_preempted=preempted,
            reprefills=reprefills,
            crashes=tuple(self.crashes),
            scrub_violations=self.scrub_violations,
            kv_leaks=kv_leaks,
            iterations=self.iterations,
            batcher_stats=dict(self.batcher.stats),
            kv_stats={d: dict(c.stats) for d, c in sorted(self._caches.items())},
            streamer_stats={
                d: {
                    "tokens_streamed": s.tokens_streamed,
                    "stream_failures": s.stream_failures,
                    "generation": s.generation,
                }
                for d, s in sorted(self._streamers.items())
            },
            completed=dict(self._completed),
            admitted=set(self._admitted),
            prefill_audit={
                rid: (seq.prefills, seq.reprefills, seq.victimized)
                for rid, seq in sorted(self._sequences.items())
            },
        )
