"""Spatial-sharing-aware placement of requests onto partitions.

The dispatcher's single ``reserved_bytes`` heuristic is blind to the two
quantities that actually govern multi-tenant accelerator latency in the
paper's model: how many live contexts share the device (MPS utilization
degrades with tenant count, section V / figure 11a) and how much work is
already queued ahead of the new request.  The placer scores every READY
candidate partition on all three signals and picks the minimum, with the
partition name as a deterministic tie-break; pinned requests bypass
scoring but still respect readiness.

Host-speed design: the context and reserved-bytes score terms come from
attribute chains deep in the mEnclave stack, and they only change when the
serving layer *does something* to the partition — executes a batch on it,
crashes it, or recovers it.  In ``incremental`` mode (how the
:class:`~repro.serve.frontend.ServingSystem` constructs its placer) those
terms are cached per device and recomputed only for devices in the dirty
set (``mark_dirty``), so a placement is a running-min pass over cached
floats plus one O(1) queue-depth lookup per candidate, instead of
rescoring every partition through the attribute chains and sorting the
result.  The floating-point evaluation order of the score is kept exactly
as the full recompute's, so incremental and full scoring are bit-equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple, Union

from repro.dispatch.dispatcher import DispatchError, EnclaveDispatcher, NoReadyPartition
from repro.secure.partition import PartitionState


class PlacementError(DispatchError):
    """No partition can host the request (and none will after recovery)."""


@dataclass(frozen=True)
class PartitionScore:
    """One candidate's scoring breakdown (kept for observability)."""

    device_name: str
    live_contexts: int
    queue_depth: int
    reserved_bytes: int
    score: float


DepthSource = Union[Mapping[str, int], Callable[[str], int]]


class SpatialPlacer:
    """Scores partitions by live contexts, queue depth and reserved bytes."""

    def __init__(
        self,
        dispatcher: EnclaveDispatcher,
        *,
        weight_contexts: float = 1.0,
        weight_queue: float = 0.25,
        weight_reserved_per_gib: float = 0.5,
        incremental: bool = False,
    ) -> None:
        self._dispatcher = dispatcher
        self.weight_contexts = weight_contexts
        self.weight_queue = weight_queue
        self.weight_reserved_per_gib = weight_reserved_per_gib
        self.placements = 0
        self._incremental = incremental
        self._registered = -1
        """Dispatcher registration count the candidate index was built at."""
        self._by_type: Dict[str, List[object]] = {}
        self._by_name: Dict[str, object] = {}
        self._dirty: Set[str] = set()
        self._cached: Dict[str, Tuple[float, float, int, int]] = {}
        """device -> (contexts_term, reserved_term, contexts, reserved)."""

    # -- candidate index ---------------------------------------------------
    def _sync(self) -> None:
        """Rebuild the device indexes when the dispatcher learned about new
        partitions (registration is append-only)."""
        registered = self._dispatcher.registered
        if registered == self._registered:
            return
        self._registered = registered
        self._by_type = {}
        self._by_name = {}
        for mos in self._dispatcher.moses():
            name = mos.partition.device.name
            # Candidates sorted by device name so a running-min pass with a
            # strict `<` reproduces the (score, name) sort order exactly.
            self._by_type.setdefault(mos.device_type, []).append(mos)
            self._by_name[name] = mos
            self._dirty.add(name)
        for candidates in self._by_type.values():
            candidates.sort(key=lambda m: m.partition.device.name)

    def mark_dirty(self, device_name: str) -> None:
        """Invalidate one device's cached context/reserved score terms.

        The frontend calls this after anything that can move them: a batch
        executed on the device, a crash, a recovery.
        """
        self._dirty.add(device_name)

    def forget(self, device_name: str) -> None:
        """Drop a device's cached terms entirely (it left the live fleet).

        A retired partition's runtime is closed and its mOS may recover
        into a different reservation shape; the next placement that
        considers the device recomputes from scratch.
        """
        self._cached.pop(device_name, None)
        self._dirty.discard(device_name)

    def audit_parity(self, queue_depths: DepthSource) -> List[str]:
        """Compare every clean cached score term against a fresh recompute.

        Returns divergence descriptions (empty means bit-exact parity
        between incremental and full scoring).  Devices in the dirty set
        are skipped — they are *known* stale and recompute before their
        next use; a divergence on a clean entry is the real bug: some
        mutation path (e.g. request expiry releasing reserved bytes)
        forgot to ``mark_dirty``.
        """
        self._sync()
        if callable(queue_depths):
            depth_of = queue_depths
        else:
            depth_of = lambda name: queue_depths.get(name, 0)  # noqa: E731
        problems: List[str] = []
        weight_queue = self.weight_queue
        for name in sorted(self._cached):
            if name in self._dirty:
                continue
            mos = self._by_name.get(name)
            if mos is None:
                problems.append(f"{name}: cached terms for an unknown device")
                continue
            device = mos.partition.device
            contexts = (
                device.active_contexts() if hasattr(device, "active_contexts") else 0
            )
            reserved = mos.manager.reserved_bytes
            fresh = (
                self.weight_contexts * contexts,
                self.weight_reserved_per_gib * (reserved / float(1 << 30)),
                contexts,
                reserved,
            )
            cached = self._cached[name]
            if cached != fresh:
                problems.append(f"{name}: cached terms {cached!r} != fresh {fresh!r}")
                continue
            depth = depth_of(name)
            cached_score = (cached[0] + weight_queue * depth) + cached[1]
            fresh_score = (fresh[0] + weight_queue * depth) + fresh[1]
            if cached_score != fresh_score:
                problems.append(
                    f"{name}: incremental score {cached_score!r} != "
                    f"full {fresh_score!r}"
                )
        return problems

    def _terms(self, mos) -> Tuple[float, float, int, int]:
        """The cached (contexts_term, reserved_term) pair for one device."""
        name = mos.partition.device.name
        if not self._incremental or name in self._dirty or name not in self._cached:
            device = mos.partition.device
            contexts = (
                device.active_contexts() if hasattr(device, "active_contexts") else 0
            )
            reserved = mos.manager.reserved_bytes
            self._cached[name] = (
                self.weight_contexts * contexts,
                self.weight_reserved_per_gib * (reserved / float(1 << 30)),
                contexts,
                reserved,
            )
            self._dirty.discard(name)
        return self._cached[name]

    # -- scoring -----------------------------------------------------------
    def score(self, mos, queue_depth: int) -> PartitionScore:
        device = mos.partition.device
        contexts = device.active_contexts() if hasattr(device, "active_contexts") else 0
        reserved = mos.manager.reserved_bytes
        value = (
            self.weight_contexts * contexts
            + self.weight_queue * queue_depth
            + self.weight_reserved_per_gib * (reserved / float(1 << 30))
        )
        return PartitionScore(
            device_name=device.name,
            live_contexts=contexts,
            queue_depth=queue_depth,
            reserved_bytes=reserved,
            score=value,
        )

    def scores(
        self, device_type: str, queue_depths: Mapping[str, int]
    ) -> List[PartitionScore]:
        """Scoring breakdown for every candidate (any state), sorted by
        (score, device name) — the placement order.  Always a fresh
        recompute (observability path, never the hot path)."""
        out = [
            self.score(m, queue_depths.get(m.partition.device.name, 0))
            for m in self._dispatcher.moses()
            if m.device_type == device_type
        ]
        return sorted(out, key=lambda s: (s.score, s.device_name))

    def place(
        self,
        request,
        queue_depths: DepthSource,
        *,
        is_ready: Optional[Callable[[object], bool]] = None,
    ):
        """Pick the mOS for ``request``; returns the chosen MicroOS.

        ``queue_depths`` is either a mapping of device name to pending
        count or an O(1) lookup callable (the frontend passes
        ``batcher.depth`` so no per-placement dict is built).

        ``is_ready`` lets the frontend overlay its own availability view
        (a partition inside its background-recovery window is READY in the
        SPM's eyes but not yet servable).  Raises :class:`NoReadyPartition`
        when candidates exist but none is available — the caller parks the
        request until a recovery completes — and plain
        :class:`~repro.dispatch.dispatcher.DispatchError` when no
        partition matches at all.
        """
        self._sync()
        if callable(queue_depths):
            depth_of = queue_depths
        else:
            depth_of = lambda name: queue_depths.get(name, 0)  # noqa: E731
        candidates = self._by_type.get(request.device_type, ())
        if request.device_name is not None:
            pinned = self._by_name.get(request.device_name)
            candidates = (
                [pinned]
                if pinned is not None and pinned.device_type == request.device_type
                else []
            )
        if not candidates:
            raise DispatchError(
                f"no partition manages a {request.device_type!r} device"
                + (
                    f" named {request.device_name!r}"
                    if request.device_name
                    else ""
                )
            )
        best = None
        best_score = 0.0
        n_candidates = 0
        weight_queue = self.weight_queue
        for mos in candidates:
            n_candidates += 1
            if mos.partition.state is not PartitionState.READY:
                continue
            if is_ready is not None and not is_ready(mos):
                continue
            contexts_term, reserved_term, _, _ = self._terms(mos)
            # Same FP evaluation order as `score`: (A + B) + C.
            name = mos.partition.device.name
            value = (
                contexts_term + weight_queue * depth_of(name)
            ) + reserved_term
            # Candidates iterate in device-name order, so strict `<` keeps
            # the first (lowest-named) of any score tie — the legacy
            # (score, device_name) sort's choice.
            if best is None or value < best_score:
                best = mos
                best_score = value
        if best is None:
            raise NoReadyPartition(
                f"all {n_candidates} candidate partition(s) for request "
                f"{request.rid!r} are crashed or recovering"
            )
        self.placements += 1
        return best
