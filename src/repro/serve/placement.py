"""Spatial-sharing-aware placement of requests onto partitions.

The dispatcher's single ``reserved_bytes`` heuristic is blind to the two
quantities that actually govern multi-tenant accelerator latency in the
paper's model: how many live contexts share the device (MPS utilization
degrades with tenant count, section V / figure 11a) and how much work is
already queued ahead of the new request.  The placer scores every READY
candidate partition on all three signals and picks the minimum, with the
partition name as a deterministic tie-break; pinned requests bypass
scoring but still respect readiness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.dispatch.dispatcher import DispatchError, EnclaveDispatcher, NoReadyPartition
from repro.secure.partition import PartitionState


class PlacementError(DispatchError):
    """No partition can host the request (and none will after recovery)."""


@dataclass(frozen=True)
class PartitionScore:
    """One candidate's scoring breakdown (kept for observability)."""

    device_name: str
    live_contexts: int
    queue_depth: int
    reserved_bytes: int
    score: float


class SpatialPlacer:
    """Scores partitions by live contexts, queue depth and reserved bytes."""

    def __init__(
        self,
        dispatcher: EnclaveDispatcher,
        *,
        weight_contexts: float = 1.0,
        weight_queue: float = 0.25,
        weight_reserved_per_gib: float = 0.5,
    ) -> None:
        self._dispatcher = dispatcher
        self.weight_contexts = weight_contexts
        self.weight_queue = weight_queue
        self.weight_reserved_per_gib = weight_reserved_per_gib
        self.placements = 0

    def score(self, mos, queue_depth: int) -> PartitionScore:
        device = mos.partition.device
        contexts = device.active_contexts() if hasattr(device, "active_contexts") else 0
        reserved = mos.manager.reserved_bytes
        value = (
            self.weight_contexts * contexts
            + self.weight_queue * queue_depth
            + self.weight_reserved_per_gib * (reserved / float(1 << 30))
        )
        return PartitionScore(
            device_name=device.name,
            live_contexts=contexts,
            queue_depth=queue_depth,
            reserved_bytes=reserved,
            score=value,
        )

    def scores(
        self, device_type: str, queue_depths: Mapping[str, int]
    ) -> List[PartitionScore]:
        """Scoring breakdown for every candidate (any state), sorted by
        (score, device name) — the placement order."""
        out = [
            self.score(m, queue_depths.get(m.partition.device.name, 0))
            for m in self._dispatcher.moses()
            if m.device_type == device_type
        ]
        return sorted(out, key=lambda s: (s.score, s.device_name))

    def place(
        self,
        request,
        queue_depths: Mapping[str, int],
        *,
        is_ready: Optional[Callable[[object], bool]] = None,
    ):
        """Pick the mOS for ``request``; returns the chosen MicroOS.

        ``is_ready`` lets the frontend overlay its own availability view
        (a partition inside its background-recovery window is READY in the
        SPM's eyes but not yet servable).  Raises :class:`NoReadyPartition`
        when candidates exist but none is available — the caller parks the
        request until a recovery completes — and plain
        :class:`~repro.dispatch.dispatcher.DispatchError` when no
        partition matches at all.
        """
        candidates = [
            m for m in self._dispatcher.moses() if m.device_type == request.device_type
        ]
        if request.device_name is not None:
            candidates = [
                m
                for m in candidates
                if m.partition.device.name == request.device_name
            ]
        if not candidates:
            raise DispatchError(
                f"no partition manages a {request.device_type!r} device"
                + (
                    f" named {request.device_name!r}"
                    if request.device_name
                    else ""
                )
            )
        ready = [
            m
            for m in candidates
            if m.partition.state is PartitionState.READY
            and (is_ready is None or is_ready(m))
        ]
        if not ready:
            raise NoReadyPartition(
                f"all {len(candidates)} candidate partition(s) for request "
                f"{request.rid!r} are crashed or recovering"
            )
        scored = [
            (self.score(m, queue_depths.get(m.partition.device.name, 0)), m)
            for m in ready
        ]
        scored.sort(key=lambda pair: (pair[0].score, pair[0].device_name))
        self.placements += 1
        return scored[0][1]
