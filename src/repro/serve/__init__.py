"""The multi-tenant serving layer.

CRONUS positions the normal-world dispatcher (section III-A) and the HAL's
MPS-style spatial sharing (section V) as its multi-tenancy story; this
package builds the serving subsystem on top of them:

* :mod:`repro.serve.tenants` — tenant registry: rate limits, memory
  quotas, priority classes, optional device pinning.
* :mod:`repro.serve.admission` — admission control with bounded per-tenant
  queues, token-bucket rate limiting in simulated time, explicit rejection
  reasons, and deterministic seeded open-loop arrival generation.
* :mod:`repro.serve.batcher` — deadline-aware batching: compatible
  invocations for one partition share the partition's long-lived sRPC
  stream (amortizing channel setup the way the sRPC fast lanes amortize
  ring accesses), flushed on max-batch, max-delay or deadline pressure.
* :mod:`repro.serve.placement` — spatial-sharing-aware placer scoring
  partitions by live accelerator contexts, serving queue depth and
  reserved bytes, with deterministic tie-breaks.
* :mod:`repro.serve.frontend` — the :class:`ServingSystem` façade wiring
  tenants → admission → batcher → placement → dispatcher → mEnclaves on a
  :class:`~repro.systems.cronus.CronusSystem`, surviving partition crashes
  mid-request with at-most-once completion.
* :mod:`repro.serve.slo` — per-tenant SLO accounting (latency percentiles,
  goodput, rejection/expiry counts) rendered by ``metrics.report``.
* :mod:`repro.serve.loadgen` — seeded trace-driven load generation at
  million-user scale: Zipf tenant popularity, diurnal/bursty arrival
  envelopes, heavy-tailed op sizes, plus the synthetic service-time model
  the scale benchmark runs both engines under.
* :mod:`repro.serve.autoscaler` — the SLO-driven elastic-fleet
  controller: sliding-window demand/pressure signals, a deterministic
  target-tracking policy, and boot/retire decisions the frontend applies
  as virtual-time events (replayable via ``scale_events``).
* :mod:`repro.serve.llm` — the continuous-batching LLM frontend:
  token-granular :class:`LLMEngine` over paged enclave KV memory
  (:mod:`repro.workloads.llm`), with per-token SLOs (TTFT/ITL), token
  streaming over sRPC, and crash-under-decode recovery (scrubbed KV,
  exactly-once re-prefill).
* :mod:`repro.serve.legacy` — the pre-heap scan engine, preserved
  verbatim for the scheduler-equivalence suite and the scale benchmark's
  baseline (deliberately not exported here).
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    REJECT_NO_PARTITION,
    REJECT_QUEUE_FULL,
    REJECT_QUOTA,
    REJECT_RATE,
    REJECT_UNKNOWN,
    Request,
    open_loop_arrivals,
)
from repro.serve.autoscaler import (
    Autoscaler,
    AutoscalerError,
    AutoscalerPolicy,
    DECISION_ACTIONS,
    FullHistoryWindow,
    SlidingWindow,
    WindowSnapshot,
)
from repro.serve.batcher import (
    Batch,
    ContinuousBatcher,
    DeadlineBatcher,
    MODE_CONTINUOUS,
    MODE_STATIC,
)
from repro.serve.frontend import ServingReport, ServingSystem
from repro.serve.llm import (
    LLMEngine,
    LLMReport,
    LLMRequest,
    LLMServingError,
    SequenceState,
    llm_arrivals,
)
from repro.serve.loadgen import (
    LoadProfile,
    generate_trace,
    iter_trace_chunks,
    synthetic_service_model,
    tenant_specs,
    zipf_weights,
)
from repro.serve.placement import PlacementError, SpatialPlacer
from repro.serve.slo import SLOAccount, SLOTracker
from repro.serve.tenants import Tenant, TenantError, TenantRegistry, TenantSpec

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "Autoscaler",
    "AutoscalerError",
    "AutoscalerPolicy",
    "Batch",
    "ContinuousBatcher",
    "DECISION_ACTIONS",
    "DeadlineBatcher",
    "FullHistoryWindow",
    "LLMEngine",
    "LLMReport",
    "LLMRequest",
    "LLMServingError",
    "LoadProfile",
    "MODE_CONTINUOUS",
    "MODE_STATIC",
    "SequenceState",
    "SlidingWindow",
    "WindowSnapshot",
    "PlacementError",
    "REJECT_NO_PARTITION",
    "REJECT_QUEUE_FULL",
    "REJECT_QUOTA",
    "REJECT_RATE",
    "REJECT_UNKNOWN",
    "Request",
    "SLOAccount",
    "SLOTracker",
    "ServingReport",
    "ServingSystem",
    "SpatialPlacer",
    "Tenant",
    "TenantError",
    "TenantRegistry",
    "TenantSpec",
    "generate_trace",
    "iter_trace_chunks",
    "llm_arrivals",
    "open_loop_arrivals",
    "synthetic_service_model",
    "tenant_specs",
    "zipf_weights",
]
