"""Deadline-aware batching of enclave invocations.

Requests placed on the same partition ride the partition's *shared*
long-lived sRPC stream instead of paying channel setup (local attestation,
SPM page sharing, dCheck, consumer-thread spawn) per request — the same
amortization move the sRPC fast lanes applied to ring-header accesses,
one layer up.

A partition's pending batch is flushed when it reaches ``max_batch``, when
its oldest request has waited ``max_delay_us``, or when the earliest
deadline among its requests arrives (deadline pressure: waiting any longer
could only create expirations).  Within a batch, requests execute in
earliest-deadline-first order with the request id as the deterministic
tie-break.

Host-speed design (the raw-speed engine refactor): each partition keeps an
**EDF heap** keyed ``(deadline, rid, seq)`` plus an O(1) incrementally
maintained due time (oldest enqueue instant and minimum deadline only ever
tighten between flushes, and a flush or evict drops the whole queue), and
a **global due-time heap with lazy deletion** orders the flush obligations
across partitions.  ``earliest_due`` is O(1) amortized and
``due_partitions`` early-outs without touching any per-partition state
when nothing is due — the pre-heap implementation re-sorted every pending
queue on every poll of the serving loop, which made one simulated second
cost O(events · pending) host work.
"""

from __future__ import annotations

import heapq
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.serve.admission import Request

_DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(**_DATACLASS_SLOTS)
class Batch:
    """One flushed group of requests bound for a single partition."""

    device_name: str
    requests: List[Request]
    formed_us: float
    reason: str = ""
    """Why the batch flushed: ``"full"``, ``"due"``, or ``""`` (unknown)."""

    def __len__(self) -> int:
        return len(self.requests)


class _DeviceQueue:
    """One partition's pending requests between two flushes.

    Requests only ever *join* a queue; removal is whole-queue (flush or
    crash-evict), so the due-time inputs — the oldest enqueue instant and
    the minimum deadline — are exact running minima, no lazy repair needed.
    """

    __slots__ = ("edf", "order", "oldest_us", "min_deadline_us")

    def __init__(self) -> None:
        self.edf: List[Tuple[float, str, int, Request]] = []
        self.order: List[Request] = []
        self.oldest_us = float("inf")
        self.min_deadline_us = float("inf")

    def __len__(self) -> int:
        return len(self.order)


class DeadlineBatcher:
    """Per-partition pending queues with max-batch/max-delay/deadline flush."""

    def __init__(self, *, max_batch: int = 8, max_delay_us: float = 2_000.0) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        if max_delay_us < 0:
            raise ValueError(f"max_delay_us must be non-negative, got {max_delay_us}")
        self.max_batch = max_batch
        self.max_delay_us = max_delay_us
        self._queues: Dict[str, _DeviceQueue] = {}
        self._due_heap: List[Tuple[float, str]] = []
        """(due_us, device) flush obligations; entries go stale when a
        queue flushes, evicts, or tightens its due time (lazy deletion)."""
        self._seq = 0
        self.batches_formed = 0
        self.requests_batched = 0
        self._live: Optional[Callable[[str], bool]] = None
        self.compactions = 0
        """Due-heap rebuilds (kept off ``stats`` — engine-comparable)."""

    def set_live_filter(self, live: Optional[Callable[[str], bool]]) -> None:
        """Install the serving layer's device-liveness view.

        With an elastic fleet, a retired or crashed device's stale
        ``(due_us, device)`` heap entries must never surface as flush
        obligations — popping one in the serving loop's flush phase would
        resurrect a dead device name with a fresh worker.  Entries whose
        device fails the filter are treated as stale and discarded.
        """
        self._live = live

    def _is_live(self, device_name: str) -> bool:
        live = self._live
        return live is None or live(device_name)

    def add(self, device_name: str, request: Request, now_us: float) -> bool:
        """Queue ``request`` for ``device_name``; True if the partition's
        batch is now full and should be flushed immediately."""
        queue = self._queues.get(device_name)
        if queue is None:
            queue = self._queues[device_name] = _DeviceQueue()
        before = self._queue_due(queue)
        self._seq += 1
        heapq.heappush(
            queue.edf, (request.deadline_us, request.rid, self._seq, request)
        )
        queue.order.append(request)
        if now_us < queue.oldest_us:
            queue.oldest_us = now_us
        if request.deadline_us < queue.min_deadline_us:
            queue.min_deadline_us = request.deadline_us
        due = self._queue_due(queue)
        if due < before:
            heap = self._due_heap
            heapq.heappush(heap, (due, device_name))
            # Every tightening pushes a fresh entry and strands the old
            # one, so tight-deadline churn grows the heap without bound
            # unless the stale fraction is compacted away.  The trigger
            # keeps the invariant len(heap) <= max(64, 4 * live queues).
            if len(heap) > 64 and len(heap) > 4 * len(self._queues):
                self._compact()
        return len(queue.order) >= self.max_batch

    def _compact(self) -> None:
        """Rebuild the due heap from ground truth, dropping stale entries.

        O(live queues); amortized free because at least 3/4 of the
        entries dropped were stale pushes that already cost O(log n).
        """
        self._due_heap = [
            (self._queue_due(queue), device)
            for device, queue in self._queues.items()
            if queue.order and self._is_live(device)
        ]
        heapq.heapify(self._due_heap)
        self.compactions += 1

    def _queue_due(self, queue: _DeviceQueue) -> float:
        return min(queue.oldest_us + self.max_delay_us, queue.min_deadline_us)

    def depth(self, device_name: str) -> int:
        """Pending (batched-but-unflushed) requests for one partition."""
        queue = self._queues.get(device_name)
        return len(queue.order) if queue is not None else 0

    def depths(self) -> Dict[str, int]:
        return {d: len(q.order) for d, q in self._queues.items() if q.order}

    def pending_requests(self, device_name: str) -> List[Request]:
        """The pending requests for one partition (crash re-queue path)."""
        queue = self._queues.get(device_name)
        return list(queue.order) if queue is not None else []

    def evict(self, device_name: str) -> List[Request]:
        """Drop and return a partition's pending requests (its partition
        crashed; the frontend re-queues them elsewhere)."""
        queue = self._queues.pop(device_name, None)
        return list(queue.order) if queue is not None else []

    def due_at(self, device_name: str) -> Optional[float]:
        """Earliest simulated time at which this partition's batch must
        flush (oldest + max_delay, or the earliest deadline)."""
        queue = self._queues.get(device_name)
        if queue is None or not queue.order:
            return None
        return self._queue_due(queue)

    def earliest_due(self) -> Optional[Tuple[float, str]]:
        """The next (time, partition) flush obligation across partitions.

        O(1) amortized: stale heap entries (their queue flushed, evicted,
        or tightened since the push) are discarded as they surface.
        """
        heap = self._due_heap
        while heap:
            due, device = heap[0]
            queue = self._queues.get(device)
            if (
                queue is not None
                and queue.order
                and self._queue_due(queue) == due
                and self._is_live(device)
            ):
                return (due, device)
            heapq.heappop(heap)
        return None

    def flush(
        self, device_name: str, now_us: float, *, reason: str = ""
    ) -> Optional[Batch]:
        """Form the batch for ``device_name`` (EDF order), or None."""
        queue = self._queues.pop(device_name, None)
        if queue is None or not queue.order:
            return None
        edf = queue.edf
        requests = [heapq.heappop(edf)[3] for _ in range(len(edf))]
        self.batches_formed += 1
        self.requests_batched += len(requests)
        return Batch(
            device_name=device_name,
            requests=requests,
            formed_us=now_us,
            reason=reason,
        )

    def due_partitions(self, now_us: float) -> List[str]:
        """Partitions whose batches must flush at or before ``now_us``.

        Early-outs via the due heap's minimum — the serving loop polls
        this on every event, and almost every poll finds nothing due, so
        the pre-heap full re-sort of ``self._pending`` was pure overhead.
        Still-valid obligations are re-pushed: the caller flushes them,
        which is what finally retires their heap entries.
        """
        heap = self._due_heap
        keep: List[Tuple[float, str]] = []
        out: List[str] = []
        seen = set()
        while heap and heap[0][0] <= now_us:
            due, device = heapq.heappop(heap)
            queue = self._queues.get(device)
            if (
                queue is None
                or not queue.order
                or self._queue_due(queue) != due
                or not self._is_live(device)
            ):
                continue  # stale (lazy deletion)
            keep.append((due, device))
            if device not in seen:
                seen.add(device)
                out.append(device)
        for entry in keep:
            heapq.heappush(heap, entry)
        out.sort()
        return out

    @property
    def stats(self) -> Dict[str, object]:
        formed = self.batches_formed
        return {
            "batches_formed": formed,
            "requests_batched": self.requests_batched,
            "mean_occupancy": (
                round(self.requests_batched / formed, 3) if formed else 0.0
            ),
        }


#: ContinuousBatcher scheduling modes.
MODE_CONTINUOUS = "continuous"
MODE_STATIC = "static"


class _DeviceLanes:
    """One device's sequence lanes: the running set plus the waiting queue."""

    __slots__ = ("running", "waiting")

    def __init__(self) -> None:
        self.running: List[object] = []
        self.waiting: List[Tuple[float, str, int, object]] = []


class ContinuousBatcher:
    """Token-granular batching of autoregressive sequences per device.

    Where the :class:`DeadlineBatcher` forms one-shot request batches, this
    batcher manages long-lived *sequences* (objects exposing ``.request``):
    each device holds up to ``max_running`` resident sequences decoding in
    lock-step iterations, plus a waiting queue ordered by
    ``(arrival_us, rid)``.

    Two modes, selected at construction so a benchmark can compare them on
    the same trace:

    * ``continuous`` (vLLM/Orca-style): finished sequences are evicted at
      the token boundary they finish on, and waiting sequences are
      admitted into the freed slots *at any boundary* — the iteration's
      fixed launch overhead always amortizes over a full batch.
    * ``static``: the device admits a batch only when its running set is
      empty and then runs it to completion — the classic request-batching
      baseline, where a long sequence holds every freed slot hostage.

    The batcher is pure bookkeeping: it never touches the clock, so the
    serving engine's virtual timeline stays the single source of time.
    """

    def __init__(
        self, *, max_running: int = 8, mode: str = MODE_CONTINUOUS
    ) -> None:
        if max_running < 1:
            raise ValueError(f"max_running must be at least 1, got {max_running}")
        if mode not in (MODE_CONTINUOUS, MODE_STATIC):
            raise ValueError(
                f"mode must be {MODE_CONTINUOUS!r} or {MODE_STATIC!r}, got {mode!r}"
            )
        self.max_running = max_running
        self.mode = mode
        self._lanes: Dict[str, _DeviceLanes] = {}
        self._seq = 0
        self.admitted_mid_batch = 0
        """Sequences admitted into a boundary where others kept running —
        zero by construction in static mode."""
        self.evictions = 0

    def _lane(self, device_name: str) -> _DeviceLanes:
        lane = self._lanes.get(device_name)
        if lane is None:
            lane = self._lanes[device_name] = _DeviceLanes()
        return lane

    def add(self, device_name: str, sequence) -> None:
        """Queue a sequence for ``device_name`` (joins at the next boundary)."""
        self._seq += 1
        request = sequence.request
        heapq.heappush(
            self._lane(device_name).waiting,
            (request.arrival_us, request.rid, self._seq, sequence),
        )

    def admit(self, device_name: str) -> List[object]:
        """Move waiting sequences into free running slots (token boundary).

        Continuous mode fills every free slot; static mode admits only
        into an *empty* running set (run-to-completion).  Returns the
        newly admitted sequences, in ``(arrival_us, rid)`` order.
        """
        lane = self._lanes.get(device_name)
        if lane is None or not lane.waiting:
            return []
        if self.mode == MODE_STATIC and lane.running:
            return []
        admitted: List[object] = []
        while lane.waiting and len(lane.running) < self.max_running:
            sequence = heapq.heappop(lane.waiting)[3]
            lane.running.append(sequence)
            admitted.append(sequence)
        if admitted and len(lane.running) > len(admitted):
            self.admitted_mid_batch += len(admitted)
        return admitted

    def finish(self, device_name: str, sequence) -> None:
        """Evict one finished (or preempted-elsewhere) running sequence."""
        lane = self._lanes.get(device_name)
        if lane is not None and sequence in lane.running:
            lane.running.remove(sequence)
            self.evictions += 1

    def running(self, device_name: str) -> List[object]:
        lane = self._lanes.get(device_name)
        return list(lane.running) if lane is not None else []

    def evict_device(self, device_name: str) -> List[object]:
        """Drop and return *all* of a crashed device's sequences, running
        first (in residence order) then waiting (in admission order)."""
        lane = self._lanes.pop(device_name, None)
        if lane is None:
            return []
        waiting = [heapq.heappop(lane.waiting)[3] for _ in range(len(lane.waiting))]
        return lane.running + waiting

    def depth(self, device_name: str) -> int:
        """Resident + waiting sequences (the placement queue-depth signal)."""
        lane = self._lanes.get(device_name)
        if lane is None:
            return 0
        return len(lane.running) + len(lane.waiting)

    def depths(self) -> Dict[str, int]:
        return {
            d: len(lane.running) + len(lane.waiting)
            for d, lane in self._lanes.items()
            if lane.running or lane.waiting
        }

    @property
    def stats(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "max_running": self.max_running,
            "admitted_mid_batch": self.admitted_mid_batch,
            "evictions": self.evictions,
        }
