"""Deadline-aware batching of enclave invocations.

Requests placed on the same partition ride the partition's *shared*
long-lived sRPC stream instead of paying channel setup (local attestation,
SPM page sharing, dCheck, consumer-thread spawn) per request — the same
amortization move the sRPC fast lanes applied to ring-header accesses,
one layer up.

A partition's pending batch is flushed when it reaches ``max_batch``, when
its oldest request has waited ``max_delay_us``, or when the earliest
deadline among its requests arrives (deadline pressure: waiting any longer
could only create expirations).  Within a batch, requests execute in
earliest-deadline-first order with the request id as the deterministic
tie-break.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serve.admission import Request


@dataclass
class Batch:
    """One flushed group of requests bound for a single partition."""

    device_name: str
    requests: List[Request]
    formed_us: float
    reason: str = ""
    """Why the batch flushed: ``"full"``, ``"due"``, or ``""`` (unknown)."""

    def __len__(self) -> int:
        return len(self.requests)


class DeadlineBatcher:
    """Per-partition pending queues with max-batch/max-delay/deadline flush."""

    def __init__(self, *, max_batch: int = 8, max_delay_us: float = 2_000.0) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        if max_delay_us < 0:
            raise ValueError(f"max_delay_us must be non-negative, got {max_delay_us}")
        self.max_batch = max_batch
        self.max_delay_us = max_delay_us
        self._pending: Dict[str, List[Tuple[float, Request]]] = {}
        self.batches_formed = 0
        self.requests_batched = 0

    def add(self, device_name: str, request: Request, now_us: float) -> bool:
        """Queue ``request`` for ``device_name``; True if the partition's
        batch is now full and should be flushed immediately."""
        pending = self._pending.setdefault(device_name, [])
        pending.append((now_us, request))
        return len(pending) >= self.max_batch

    def depth(self, device_name: str) -> int:
        """Pending (batched-but-unflushed) requests for one partition."""
        return len(self._pending.get(device_name, ()))

    def depths(self) -> Dict[str, int]:
        return {d: len(p) for d, p in self._pending.items() if p}

    def pending_requests(self, device_name: str) -> List[Request]:
        """The pending requests for one partition (crash re-queue path)."""
        return [r for _, r in self._pending.get(device_name, ())]

    def evict(self, device_name: str) -> List[Request]:
        """Drop and return a partition's pending requests (its partition
        crashed; the frontend re-queues them elsewhere)."""
        pending = self._pending.pop(device_name, [])
        return [r for _, r in pending]

    def due_at(self, device_name: str) -> Optional[float]:
        """Earliest simulated time at which this partition's batch must
        flush (oldest + max_delay, or the earliest deadline)."""
        pending = self._pending.get(device_name)
        if not pending:
            return None
        oldest = min(t for t, _ in pending)
        earliest_deadline = min(r.deadline_us for _, r in pending)
        return min(oldest + self.max_delay_us, earliest_deadline)

    def earliest_due(self) -> Optional[Tuple[float, str]]:
        """The next (time, partition) flush obligation across partitions."""
        due = [
            (self.due_at(d), d) for d, p in sorted(self._pending.items()) if p
        ]
        due = [(t, d) for t, d in due if t is not None]
        return min(due) if due else None

    def flush(
        self, device_name: str, now_us: float, *, reason: str = ""
    ) -> Optional[Batch]:
        """Form the batch for ``device_name`` (EDF order), or None."""
        pending = self._pending.pop(device_name, None)
        if not pending:
            return None
        requests = [r for _, r in pending]
        requests.sort(key=lambda r: (r.deadline_us, r.rid))
        self.batches_formed += 1
        self.requests_batched += len(requests)
        return Batch(
            device_name=device_name,
            requests=requests,
            formed_us=now_us,
            reason=reason,
        )

    def due_partitions(self, now_us: float) -> List[str]:
        """Partitions whose batches must flush at or before ``now_us``."""
        out = []
        for device_name in sorted(self._pending):
            due = self.due_at(device_name)
            if due is not None and due <= now_us:
                out.append(device_name)
        return out

    @property
    def stats(self) -> Dict[str, object]:
        formed = self.batches_formed
        return {
            "batches_formed": formed,
            "requests_batched": self.requests_batched,
            "mean_occupancy": (
                round(self.requests_batched / formed, 3) if formed else 0.0
            ),
        }
