"""The pre-heap serving engine, preserved as a reference implementation.

The raw-speed refactor rebuilt the serving inner loop around priority
heaps (see :mod:`repro.serve.frontend` and :mod:`repro.serve.batcher`).
This module keeps the original O(events · n) scan implementation alive,
verbatim in behaviour, for two jobs:

* the **scheduler equivalence suite** runs the same seeded arrival trace
  through both engines and asserts identical completion order, SLO
  fingerprint and exactly-once audit — the proof that the heap engine
  changed host speed and nothing else;
* the **scale benchmark** (``benchmarks/bench_scale.py``) measures the
  heap engine's requests-simulated-per-wall-clock-second against this
  engine, the recorded trajectory in ``BENCH_scale.json``.

Nothing else should use this module; it is deliberately not exported from
``repro.serve``'s top level beyond :class:`LegacyServingSystem`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.dispatch.dispatcher import DispatchError, NoReadyPartition
from repro.secure.partition import PartitionState
from repro.serve.admission import Request
from repro.serve.batcher import Batch
from repro.serve.frontend import ServingReport, ServingSystem
from repro.serve.placement import PartitionScore


class ScanDeadlineBatcher:
    """The pre-heap batcher: per-flush sorts and per-poll full scans.

    Same public API and same observable behaviour as
    :class:`~repro.serve.batcher.DeadlineBatcher`; ``due_at`` re-scans the
    pending list, ``earliest_due`` re-sorts every partition's queue on
    every call, ``flush`` sorts the batch — the cost profile the heap
    engine replaced.
    """

    def __init__(self, *, max_batch: int = 8, max_delay_us: float = 2_000.0) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        if max_delay_us < 0:
            raise ValueError(f"max_delay_us must be non-negative, got {max_delay_us}")
        self.max_batch = max_batch
        self.max_delay_us = max_delay_us
        self._pending: Dict[str, List[Tuple[float, Request]]] = {}
        self.batches_formed = 0
        self.requests_batched = 0
        self._live: Optional[Callable[[str], bool]] = None
        self.compactions = 0
        """Always 0: the scan batcher has no due heap to compact."""

    def set_live_filter(self, live: Optional[Callable[[str], bool]]) -> None:
        """Same contract as the heap batcher: non-live devices never
        surface flush obligations."""
        self._live = live

    def _is_live(self, device_name: str) -> bool:
        live = self._live
        return live is None or live(device_name)

    def add(self, device_name: str, request: Request, now_us: float) -> bool:
        pending = self._pending.setdefault(device_name, [])
        pending.append((now_us, request))
        return len(pending) >= self.max_batch

    def depth(self, device_name: str) -> int:
        return len(self._pending.get(device_name, ()))

    def depths(self) -> Dict[str, int]:
        return {d: len(p) for d, p in self._pending.items() if p}

    def pending_requests(self, device_name: str) -> List[Request]:
        return [r for _, r in self._pending.get(device_name, ())]

    def evict(self, device_name: str) -> List[Request]:
        pending = self._pending.pop(device_name, [])
        return [r for _, r in pending]

    def due_at(self, device_name: str) -> Optional[float]:
        pending = self._pending.get(device_name)
        if not pending:
            return None
        oldest = min(t for t, _ in pending)
        earliest_deadline = min(r.deadline_us for _, r in pending)
        return min(oldest + self.max_delay_us, earliest_deadline)

    def earliest_due(self) -> Optional[Tuple[float, str]]:
        due = [
            (self.due_at(d), d)
            for d, p in sorted(self._pending.items())
            if p and self._is_live(d)
        ]
        due = [(t, d) for t, d in due if t is not None]
        return min(due) if due else None

    def flush(
        self, device_name: str, now_us: float, *, reason: str = ""
    ) -> Optional[Batch]:
        pending = self._pending.pop(device_name, None)
        if not pending:
            return None
        requests = [r for _, r in pending]
        requests.sort(key=lambda r: (r.deadline_us, r.rid))
        self.batches_formed += 1
        self.requests_batched += len(requests)
        return Batch(
            device_name=device_name,
            requests=requests,
            formed_us=now_us,
            reason=reason,
        )

    def due_partitions(self, now_us: float) -> List[str]:
        out = []
        for device_name in sorted(self._pending):
            if not self._is_live(device_name):
                continue
            due = self.due_at(device_name)
            if due is not None and due <= now_us:
                out.append(device_name)
        return out

    @property
    def stats(self) -> Dict[str, object]:
        formed = self.batches_formed
        return {
            "batches_formed": formed,
            "requests_batched": self.requests_batched,
            "mean_occupancy": (
                round(self.requests_batched / formed, 3) if formed else 0.0
            ),
        }


class ScanSpatialPlacer:
    """The pre-incremental placer: rescore every candidate, sort, pick."""

    def __init__(
        self,
        dispatcher,
        *,
        weight_contexts: float = 1.0,
        weight_queue: float = 0.25,
        weight_reserved_per_gib: float = 0.5,
    ) -> None:
        self._dispatcher = dispatcher
        self.weight_contexts = weight_contexts
        self.weight_queue = weight_queue
        self.weight_reserved_per_gib = weight_reserved_per_gib
        self.placements = 0

    def mark_dirty(self, device_name: str) -> None:
        """No cache to invalidate: every placement rescores everything."""

    def forget(self, device_name: str) -> None:
        """No cache to drop either (elastic-fleet retire path)."""

    def score(self, mos, queue_depth: int) -> PartitionScore:
        device = mos.partition.device
        contexts = device.active_contexts() if hasattr(device, "active_contexts") else 0
        reserved = mos.manager.reserved_bytes
        value = (
            self.weight_contexts * contexts
            + self.weight_queue * queue_depth
            + self.weight_reserved_per_gib * (reserved / float(1 << 30))
        )
        return PartitionScore(
            device_name=device.name,
            live_contexts=contexts,
            queue_depth=queue_depth,
            reserved_bytes=reserved,
            score=value,
        )

    def place(
        self,
        request,
        queue_depths,
        *,
        is_ready: Optional[Callable[[object], bool]] = None,
    ):
        if callable(queue_depths):
            depth_of = queue_depths
        else:
            depth_of = lambda name: queue_depths.get(name, 0)  # noqa: E731
        candidates = [
            m for m in self._dispatcher.moses() if m.device_type == request.device_type
        ]
        if request.device_name is not None:
            candidates = [
                m
                for m in candidates
                if m.partition.device.name == request.device_name
            ]
        if not candidates:
            raise DispatchError(
                f"no partition manages a {request.device_type!r} device"
                + (
                    f" named {request.device_name!r}"
                    if request.device_name
                    else ""
                )
            )
        ready = [
            m
            for m in candidates
            if m.partition.state is PartitionState.READY
            and (is_ready is None or is_ready(m))
        ]
        if not ready:
            raise NoReadyPartition(
                f"all {len(candidates)} candidate partition(s) for request "
                f"{request.rid!r} are crashed or recovering"
            )
        scored = [
            (self.score(m, depth_of(m.partition.device.name)), m)
            for m in ready
        ]
        scored.sort(key=lambda pair: (pair[0].score, pair[0].device_name))
        self.placements += 1
        return scored[0][1]


class LegacyServingSystem(ServingSystem):
    """A :class:`~repro.serve.frontend.ServingSystem` running the pre-heap
    scan engine: the original event loop, batcher and placer.

    Shares every downstream code path (admission, SLO accounting, batch
    execution, failover) with the heap engine, so any divergence between
    the two reports is a scheduling-order difference — exactly what the
    equivalence suite is hunting for.
    """

    def __init__(self, system, **kwargs) -> None:
        super().__init__(system, **kwargs)
        self.batcher = ScanDeadlineBatcher(
            max_batch=self.batcher.max_batch,
            max_delay_us=self.batcher.max_delay_us,
        )
        self.placer = ScanSpatialPlacer(system.dispatcher)
        if self._fleet is not None:
            # The heap batcher got the live filter in _ensure_fleet; the
            # scan batcher that just replaced it needs the same view.
            self.batcher.set_live_filter(self._batcher_live)

    def run(
        self,
        arrivals: Iterable[Request],
        *,
        crash_events: Sequence[Tuple[float, str]] = (),
        scale_events: Sequence[Tuple[float, str, str]] = (),
    ) -> ServingReport:
        """The original scan loop: rebuild the event list and re-scan every
        queue on every step.  Same per-instant processing order as the
        heap engine (recovery → fleet-timer → scale → arrival → crash →
        flush), so a replayed scale schedule renders identically here.
        """
        pending = sorted(arrivals, key=lambda r: (r.arrival_us, r.rid))
        crash_queue = sorted(crash_events)
        scale_queue = self._begin_run(scale_events)
        ai = ci = si = 0
        while True:
            self._more_arrivals = ai < len(pending)
            events: List[Tuple[float, int]] = []
            if self._down_until:
                events.append((min(self._down_until.values()), 0))
            if ai < len(pending):
                events.append((pending[ai].arrival_us, 1))
            if ci < len(crash_queue):
                events.append((crash_queue[ci][0], 2))
            due = self.batcher.earliest_due()
            if due is not None:
                events.append((due[0], 3))
            if self._fleet is not None:
                if self._boot_at:
                    events.append((min(self._boot_at.values()), 4))
                if self._park_at:
                    events.append((min(self._park_at.values()), 5))
                if self._next_tick_us is not None and self._more_arrivals:
                    events.append((self._next_tick_us, 6))
            if si < len(scale_queue):
                events.append((scale_queue[si][0], 7))
            if not events:
                break
            self._now = max(self._now, min(events)[0])
            self._process_recoveries()
            if self._fleet is not None:
                self._process_fleet_timers()
                while si < len(scale_queue) and scale_queue[si][0] <= self._now:
                    _, action, device = scale_queue[si]
                    self._apply_scale(self._now, action, device)
                    si += 1
                self._process_tick()
            while ai < len(pending) and pending[ai].arrival_us <= self._now:
                self.offer(pending[ai])
                ai += 1
            while ci < len(crash_queue) and crash_queue[ci][0] <= self._now:
                self.crash_partition(crash_queue[ci][1])
                ci += 1
            for device in self.batcher.due_partitions(self._now):
                self._flush(device)
        for request in self._parked:
            self._expire(request)
        self._parked.clear()
        return self.report()

    def _process_recoveries(self) -> None:
        recovered = sorted(
            d for d, until in self._down_until.items() if until <= self._now
        )
        for device in recovered:
            del self._down_until[device]
        if recovered and self._parked:
            parked, self._parked = self._parked, []
            for request in parked:
                if request.deadline_us < self._now:
                    self._expire(request)
                else:
                    self._place(request)
