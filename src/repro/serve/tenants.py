"""Tenant registry: who may submit work, and under which limits.

A tenant is one mutually-distrusting client of the PaaS (the Composite
Enclaves setting): its enclave invocations are isolated from other tenants
by the partition/spatial-sharing machinery below, while this layer bounds
the *load* it can impose — a token-bucket rate limit, a memory quota over
in-flight requests, and a bounded admission queue.  Priority classes order
tenants wherever the serving layer iterates over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class TenantError(Exception):
    """Registry misuse: duplicate or unknown tenant, invalid spec."""


@dataclass(frozen=True)
class TenantSpec:
    """Static per-tenant limits, fixed at registration time."""

    name: str
    rate_limit_rps: float = 100.0
    """Token-bucket refill rate, requests per *simulated* second."""
    burst: int = 8
    """Token-bucket depth: admissions tolerated back-to-back."""
    memory_quota_bytes: int = 64 << 20
    """Upper bound on the summed memory estimates of in-flight requests."""
    max_queue_depth: int = 64
    """Bound on admitted-but-unfinished requests (the per-tenant queue)."""
    priority: int = 1
    """Priority class; lower values are served first on ties."""
    deadline_us: float = 500_000.0
    """Relative deadline applied to each of this tenant's requests."""
    device_name: Optional[str] = None
    """Optional accelerator pinning (e.g. ``'gpu1'``) honoured by placement."""

    def __post_init__(self) -> None:
        if self.rate_limit_rps <= 0:
            raise TenantError(f"tenant {self.name!r}: rate limit must be positive")
        if self.burst < 1:
            raise TenantError(f"tenant {self.name!r}: burst must be at least 1")
        if self.max_queue_depth < 1:
            raise TenantError(f"tenant {self.name!r}: queue depth must be at least 1")


@dataclass
class Tenant:
    """Runtime admission state of one registered tenant."""

    spec: TenantSpec
    tokens: float = 0.0
    last_refill_us: Optional[float] = None
    in_flight: int = 0
    in_flight_bytes: int = 0
    offered: int = 0

    def refill(self, now_us: float) -> None:
        """Advance the token bucket to ``now_us`` (simulated time)."""
        if self.last_refill_us is None:
            self.tokens = float(self.spec.burst)
        else:
            elapsed_s = max(0.0, now_us - self.last_refill_us) / 1e6
            self.tokens = min(
                float(self.spec.burst), self.tokens + elapsed_s * self.spec.rate_limit_rps
            )
        self.last_refill_us = now_us

    @property
    def name(self) -> str:
        return self.spec.name


class TenantRegistry:
    """All registered tenants, iterated in (priority, name) order."""

    def __init__(self) -> None:
        self._tenants: Dict[str, Tenant] = {}

    def register(self, spec: TenantSpec) -> Tenant:
        if spec.name in self._tenants:
            raise TenantError(f"tenant {spec.name!r} already registered")
        tenant = Tenant(spec=spec)
        self._tenants[spec.name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        try:
            return self._tenants[name]
        except KeyError:
            raise TenantError(f"no tenant named {name!r}") from None

    def known(self, name: str) -> bool:
        return name in self._tenants

    def tenants(self) -> List[Tenant]:
        return sorted(
            self._tenants.values(), key=lambda t: (t.spec.priority, t.spec.name)
        )
