"""Trace-driven load generation at million-user scale.

:func:`repro.serve.admission.open_loop_arrivals` models one tenant
offering a steady Poisson stream — the right tool for the four-tenant
SLO benches, and hopeless for the north star of "heavy traffic from
millions of users".  This module generates the production-shaped trace:

* **Zipf tenant popularity** — request volume across *thousands* of
  tenants follows a discrete power law (rank ``r`` draws traffic
  ∝ ``1/r^s``), the standard shape of real multi-tenant request logs: a
  few whales, a long tail of mice.
* **Diurnal and bursty arrival envelope** — the aggregate arrival rate is
  an inhomogeneous Poisson process: a sinusoidal day/night cycle
  (``diurnal_amplitude``) with superimposed seeded traffic bursts
  (``burst_rate_multiplier`` for ``burst_duration_us``-long episodes), so
  the scheduler sees both troughs and rushes, not a flat offered load.
* **Heavy-tailed op sizes** — request sizes draw from a bounded Pareto
  (shape ``size_alpha``), matching the "most calls are small, the p99 is
  enormous" shape of real inference payloads.

Everything is derived from one ``numpy`` generator seeded with ``seed``,
so a trace is a pure function of its :class:`LoadProfile` — replaying the
profile replays the byte-identical trace, which is what lets the scale
benchmark assert the legacy and heap engines agree on every SLO table.

Generation is vectorized (one RNG pass per field, not per request):
producing a million-request trace costs a few hundred milliseconds, so
the load generator never dominates the engine measurement it feeds.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.serve.admission import Request
from repro.serve.tenants import TenantSpec

_DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(frozen=True, **_DATACLASS_SLOTS)
class LoadProfile:
    """Knobs of one generated trace (see ``docs/serving.md``)."""

    seed: int = 2022
    """Master seed; every stream below derives from it."""
    tenants: int = 2_000
    """Distinct tenants; popularity is Zipf-ranked over them."""
    requests: int = 100_000
    """Total arrivals in the trace."""
    zipf_s: float = 1.1
    """Zipf exponent; larger values concentrate traffic on the whales."""
    mean_rate_rps: float = 50_000.0
    """Aggregate offered rate (requests per simulated second), before the
    envelope modulates it."""
    diurnal_amplitude: float = 0.6
    """Peak-to-mean swing of the sinusoidal day/night cycle (0 disables)."""
    diurnal_period_us: float = 5e6
    """One "day" of the compressed diurnal cycle, simulated µs."""
    burst_rate_multiplier: float = 4.0
    """Arrival-rate multiplier inside a burst episode (1 disables)."""
    burst_duration_us: float = 50_000.0
    """Length of one burst episode."""
    burst_every_us: float = 1e6
    """Mean spacing between burst starts (exponential)."""
    size_alpha: float = 2.2
    """Bounded-Pareto shape for op sizes; smaller = heavier tail."""
    size_min: int = 4
    """Smallest square-matmul operand size."""
    size_max: int = 32
    """Largest operand size (the tail is clipped here)."""
    deadline_us: float = 400_000.0
    """Relative deadline stamped on every request (and tenant spec)."""
    rate_limit_headroom: float = 4.0
    """Each tenant's token-bucket rate is its Zipf-expected share of the
    aggregate times this factor, so well-behaved load mostly admits."""
    tenant_queue_depth: int = 4096
    """Per-tenant in-flight cap (``TenantSpec.max_queue_depth``).  Sized so
    the whale tenants — tens of thousands of offered rps at the default
    Zipf shape — are paced by their token buckets, not by queue rejections."""

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError(f"tenants must be positive, got {self.tenants}")
        if self.requests < 0:
            raise ValueError(f"requests must be non-negative, got {self.requests}")
        if self.zipf_s <= 0:
            raise ValueError(f"zipf_s must be positive, got {self.zipf_s}")
        if self.mean_rate_rps <= 0:
            raise ValueError(f"mean_rate_rps must be positive, got {self.mean_rate_rps}")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )
        if self.burst_rate_multiplier < 1:
            raise ValueError(
                f"burst_rate_multiplier must be >= 1, got {self.burst_rate_multiplier}"
            )
        if not 0 < self.size_min <= self.size_max:
            raise ValueError(
                f"need 0 < size_min <= size_max, got {self.size_min}..{self.size_max}"
            )


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf popularity over ranks ``1..n`` (weight ∝ 1/rank^s)."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-float(s))
    return weights / weights.sum()


def tenant_specs(profile: LoadProfile) -> List[TenantSpec]:
    """One :class:`TenantSpec` per generated tenant.

    Rate limits follow each tenant's expected Zipf share of the aggregate
    (with ``rate_limit_headroom``), so the whales buy proportionally more
    capacity than the tail — tenant ``scale-00000`` is the most popular.
    """
    weights = zipf_weights(profile.tenants, profile.zipf_s)
    specs = []
    for i in range(profile.tenants):
        expected_rps = float(weights[i]) * profile.mean_rate_rps
        rate = max(1.0, expected_rps * profile.rate_limit_headroom)
        specs.append(
            TenantSpec(
                sys.intern(f"scale-{i:05d}"),
                rate_limit_rps=rate,
                burst=max(4, int(rate / 50.0)),
                max_queue_depth=profile.tenant_queue_depth,
                deadline_us=profile.deadline_us,
                memory_quota_bytes=256 << 20,
            )
        )
    return specs


def _arrival_times(profile: LoadProfile, rng: np.random.Generator) -> np.ndarray:
    """Arrival instants (µs) of an inhomogeneous Poisson process.

    Uses the standard thinning-free warp: draw homogeneous exponential
    gaps at the *peak* rate, then keep each arrival with probability
    ``rate(t)/peak`` — vectorized over generous over-draws until the
    requested count is reached.
    """
    n = profile.requests
    if n == 0:
        return np.empty(0, dtype=np.float64)
    base_rate = profile.mean_rate_rps / 1e6  # arrivals per µs
    peak = base_rate * (1.0 + profile.diurnal_amplitude) * profile.burst_rate_multiplier
    kept: List[np.ndarray] = []
    total = 0
    t0 = 0.0
    # Burst schedule long enough to cover any plausible horizon.
    horizon_guess = 4.0 * n / base_rate
    n_bursts = max(1, int(horizon_guess / profile.burst_every_us) + 2)
    burst_starts = np.cumsum(
        rng.exponential(profile.burst_every_us, size=n_bursts)
    )
    while total < n:
        draw = max(1024, int((n - total) * 1.5))
        gaps = rng.exponential(1.0 / peak, size=draw)
        times = t0 + np.cumsum(gaps)
        t0 = float(times[-1])
        rate = base_rate * (
            1.0
            + profile.diurnal_amplitude
            * np.sin(2.0 * np.pi * times / profile.diurnal_period_us)
        )
        if profile.burst_rate_multiplier > 1.0:
            idx = np.searchsorted(burst_starts, times, side="right") - 1
            since_start = np.where(
                idx >= 0, times - burst_starts[np.maximum(idx, 0)], np.inf
            )
            in_burst = since_start < profile.burst_duration_us
            rate = rate * np.where(in_burst, profile.burst_rate_multiplier, 1.0)
        accept = rng.random(draw) < rate / peak
        kept.append(times[accept])
        total += int(accept.sum())
    return np.concatenate(kept)[:n]


def _op_sizes(profile: LoadProfile, rng: np.random.Generator) -> np.ndarray:
    """Bounded-Pareto op sizes in ``[size_min, size_max]`` (heavy tail)."""
    raw = profile.size_min * (1.0 + rng.pareto(profile.size_alpha, size=profile.requests))
    return np.minimum(raw, profile.size_max).astype(np.int64)


def generate_trace(profile: LoadProfile) -> Tuple[List[TenantSpec], List[Request]]:
    """The full seeded trace: tenant specs plus arrival-ordered requests.

    Deterministic: two calls with equal profiles return byte-identical
    traces (same rids, arrival instants, sizes, data seeds).
    """
    rng = np.random.default_rng(profile.seed)
    specs = tenant_specs(profile)
    weights = zipf_weights(profile.tenants, profile.zipf_s)
    arrivals = _arrival_times(profile, rng)
    tenant_idx = rng.choice(profile.tenants, size=profile.requests, p=weights)
    sizes = _op_sizes(profile, rng)
    data_seeds = rng.integers(0, 2**32, size=profile.requests)
    names = [spec.name for spec in specs]
    counters = [0] * profile.tenants
    deadline = profile.deadline_us
    requests: List[Request] = []
    append = requests.append
    for i in range(profile.requests):
        ti = int(tenant_idx[i])
        tenant = names[ti]
        seq = counters[ti]
        counters[ti] = seq + 1
        t = float(arrivals[i])
        append(
            Request(
                tenant=tenant,
                rid=f"{tenant}-{seq:07d}",
                arrival_us=t,
                deadline_us=t + deadline,
                size=int(sizes[i]),
                data_seed=int(data_seeds[i]),
            )
        )
    return specs, requests


def iter_trace_chunks(
    profile: LoadProfile, chunk: int = 100_000
) -> Iterator[List[Request]]:
    """Yield the trace in arrival-ordered chunks (memory-bounded callers)."""
    specs, requests = generate_trace(profile)
    del specs
    for start in range(0, len(requests), chunk):
        yield requests[start:start + chunk]


def synthetic_service_model(
    base_us: float = 18.0, per_cell_us: float = 0.035
) -> "SyntheticModel":
    """A deterministic service-time model for scale sweeps.

    ``service = base + per_cell · size²`` µs — a pure function of the
    request, so both scheduler engines observe identical service times and
    their SLO tables can be compared byte-for-byte without running a
    million real enclave matmuls.  The defaults approximate the real
    worker's measured per-request cost on the figure-9 testbed.
    """
    return SyntheticModel(base_us, per_cell_us)


class SyntheticModel:
    """Callable service-time model (named class so reports can repr it)."""

    __slots__ = ("base_us", "per_cell_us")

    def __init__(self, base_us: float, per_cell_us: float) -> None:
        self.base_us = base_us
        self.per_cell_us = per_cell_us

    def __call__(self, request: Request) -> float:
        return self.base_us + self.per_cell_us * (request.size * request.size)

    def __repr__(self) -> str:
        return f"SyntheticModel(base_us={self.base_us}, per_cell_us={self.per_cell_us})"
