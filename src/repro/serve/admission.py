"""Admission control: bounded queues, rate limits, explicit backpressure.

Every request is either *admitted* (it will complete exactly once or be
reported expired — never silently lost) or *rejected* with an explicit
reason, instead of growing an unbounded queue.  All decisions happen in
simulated time, so an overload experiment replays byte-identically from
its seed.

The module also provides the deterministic open-loop load generator:
per-tenant Poisson arrival streams drawn from independent seeded RNGs, so
one tenant's stream never perturbs another's (the property the noisy-
neighbour isolation test leans on).
"""

from __future__ import annotations

import random
import sys
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.serve.tenants import Tenant, TenantRegistry

_DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}

#: Rejection reasons (explicit backpressure signals).
REJECT_UNKNOWN = "unknown-tenant"
REJECT_RATE = "rate-limited"
REJECT_QUEUE_FULL = "queue-full"
REJECT_QUOTA = "memory-quota"
REJECT_NO_PARTITION = "no-partition"


@dataclass(**_DATACLASS_SLOTS)
class Request:
    """One enclave invocation offered to the serving frontend.

    The payload is a square matmul (the figure-9 kernel): inputs are
    derived from ``data_seed`` at execution time, and the result is
    verified against a host-side reference so a "completion" always means
    a *correct* completion.

    A hot-path record: slotted (Python 3.10+) so a million-request trace
    does not pay one ``__dict__`` alloc per request, and producers intern
    the tenant/device key strings so the frontend's per-device and
    per-tenant dict operations hash pointer-identical keys.
    """

    tenant: str
    rid: str
    arrival_us: float
    deadline_us: float
    kind: str = "matmul"
    size: int = 8
    device_type: str = "gpu"
    device_name: Optional[str] = None
    data_seed: int = 0

    @property
    def memory_bytes(self) -> int:
        """Accelerator-memory estimate charged against the tenant quota.

        The matmul holds three device buffers at once — A, B, *and* the
        result C — all ``size x size`` float32.
        """
        return 3 * self.size * self.size * 4


@dataclass(frozen=True, **_DATACLASS_SLOTS)
class AdmissionDecision:
    """The controller's verdict on one offered request."""

    admitted: bool
    reason: Optional[str] = None


class AdmissionController:
    """Token-bucket + bounded-queue + quota gate in front of the batcher."""

    def __init__(self, registry: TenantRegistry) -> None:
        self._registry = registry
        self._settled: Set[str] = set()
        #: Double-release attempts caught by the settled-rid guard (each
        #: one is a frontend bug that would otherwise corrupt the quota).
        self.double_settles = 0

    def offer(self, request: Request, now_us: float) -> AdmissionDecision:
        """Admit or reject ``request`` at simulated time ``now_us``."""
        if not self._registry.known(request.tenant):
            return AdmissionDecision(False, REJECT_UNKNOWN)
        tenant = self._registry.get(request.tenant)
        tenant.offered += 1
        tenant.refill(now_us)
        if tenant.tokens < 1.0:
            return AdmissionDecision(False, REJECT_RATE)
        if tenant.in_flight >= tenant.spec.max_queue_depth:
            return AdmissionDecision(False, REJECT_QUEUE_FULL)
        if tenant.in_flight_bytes + request.memory_bytes > tenant.spec.memory_quota_bytes:
            return AdmissionDecision(False, REJECT_QUOTA)
        tenant.tokens -= 1.0
        tenant.in_flight += 1
        tenant.in_flight_bytes += request.memory_bytes
        return AdmissionDecision(True)

    def settle(self, request: Request) -> bool:
        """Release the queue slot and quota of a terminal request
        (completed or expired).  Re-queued requests stay admitted — a
        crash never re-charges the rate limiter.

        Idempotent: a rid settles exactly once.  A second settle (e.g. a
        request that expired while crash-parked and later surfaces on the
        completion path) is counted in :attr:`double_settles` and ignored,
        instead of silently double-releasing ``in_flight``/
        ``in_flight_bytes`` behind a ``max(0, ...)`` clamp.  Returns True
        iff this call released the slot.
        """
        if request.rid in self._settled:
            self.double_settles += 1
            return False
        self._settled.add(request.rid)
        tenant = self._registry.get(request.tenant)
        tenant.in_flight -= 1
        tenant.in_flight_bytes -= request.memory_bytes
        return True


def open_loop_arrivals(
    tenant: Tenant,
    *,
    count: int,
    seed: int,
    start_us: float = 0.0,
    mean_interarrival_us: Optional[float] = None,
    size: int = 8,
    kind: str = "matmul",
) -> List[Request]:
    """A deterministic open-loop (Poisson) arrival stream for one tenant.

    Interarrival gaps are exponential with mean ``mean_interarrival_us``
    (default: the tenant's rate limit, i.e. the tenant offers exactly what
    it paid for; pass a smaller mean to model a noisy neighbour).  Each
    tenant draws from its own ``random.Random(seed)``, so streams are
    independent: adding or removing a tenant never changes another
    tenant's arrivals.
    """
    spec = tenant.spec
    mean = mean_interarrival_us
    if mean is None:
        mean = 1e6 / spec.rate_limit_rps
    rng = random.Random(seed)
    out: List[Request] = []
    t = start_us
    tenant_key = sys.intern(spec.name)
    device_key = sys.intern(spec.device_name) if spec.device_name else None
    for i in range(count):
        t += rng.expovariate(1.0 / mean)
        out.append(
            Request(
                tenant=tenant_key,
                rid=f"{tenant_key}-{i:07d}",
                arrival_us=t,
                deadline_us=t + spec.deadline_us,
                kind=kind,
                size=size,
                device_name=device_key,
                data_seed=rng.randrange(2**32),
            )
        )
    return out
