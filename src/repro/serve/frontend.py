"""The ServingSystem façade: tenants → admission → batching → mEnclaves.

Turns a booted :class:`~repro.systems.cronus.CronusSystem` into a
multi-tenant inference frontend.  Offered requests pass admission control,
are placed onto a partition by the spatial-sharing placer, ride the
partition's shared long-lived sRPC runtime in deadline-ordered batches,
and are accounted per tenant by the SLO tracker.

Two notions of time coexist (see ``docs/serving.md``):

* The serving layer runs an **open-loop virtual event timeline**
  (arrivals, batch-flush deadlines, crash and recovery instants) — the
  time axis all SLO metrics use.  Per-partition ``free_at`` bookkeeping
  models the partitions draining their queues concurrently.
* The **platform clock** is the execution-cost meter: each batch really
  executes on the mEnclave stack, and the clock delta it produces is the
  batch's service time.  The global clock serializes all partitions'
  work, so it is *not* used directly as a latency axis.

The inner loop is a **heap-driven event engine** (the raw-speed engine
refactor): the event sources — the sorted arrival trace and crash
schedule (cursor peeks), partition recoveries (a min-heap with lazy
deletion), batch-flush obligations (the batcher's due heap), and, when
the fleet is elastic, partition boot/park instants and autoscaler ticks —
are merged by next-event time, so one simulated second of open-loop
traffic costs O(events · log n) host work.  The pre-heap implementation
rebuilt an event list and re-scanned every pending queue per step, which
was O(events · n); it survives verbatim as
:class:`~repro.serve.legacy.LegacyServingSystem` and the scheduler
equivalence suite asserts both engines produce byte-identical SLO tables,
completion orders and audits from the same seeded trace.

**Elastic fleet** (the SLO-driven autoscaler): with an
:class:`~repro.serve.autoscaler.AutoscalerPolicy` (or a fixed
``scale_events`` schedule) the GPU partitions become a managed fleet.
Each device is ``live`` (placeable), ``booting`` (mOS loading for
``boot_delay_us`` of virtual time before its sRPC runtime is warmed),
``draining`` (retire decided: no new placements, pending batch flushed,
parks once the device runs dry) or ``parked`` (retired: runtime closed
via the crash-failover drain path, minus the scrub — a retire is clean).
Every transition is an ordinary virtual-time event, recorded in
``scaling_events``, so an autoscaled run is replayable: feed the recorded
boot/retire decisions back as ``scale_events`` (with the same
``initial_live`` fleet) and the run — on either engine — reproduces the
byte-identical SLO table and completion order.

Failover (the section IV-D story, lifted to the serving layer): a
partition crash mid-request surfaces as
:class:`~repro.rpc.channel.SRPCPeerFailure`; the frontend re-queues every
admitted-but-unfinished request — never a completed one — and re-places
it on a surviving partition, or parks it until the crashed partition's
background recovery window closes.  A completed-request registry makes
completion **at-most-once**: each admitted request completes exactly once
or is reported expired, never duplicated.
"""

from __future__ import annotations

import hashlib
import heapq
from collections import deque
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.dispatch.dispatcher import DispatchError, NoReadyPartition
from repro.obs.span import NO_SPAN
from repro.rpc.channel import SRPCPeerFailure
from repro.secure.spm import SPMError
from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    REJECT_NO_PARTITION,
    REJECT_QUEUE_FULL,
    Request,
)
from repro.serve.autoscaler import (
    Autoscaler,
    AutoscalerPolicy,
    DECISION_ACTIONS,
    SCALE_BOOT,
    SCALE_PARK,
    SCALE_RETIRE,
    SCALE_UP,
)
from repro.serve.batcher import DeadlineBatcher
from repro.serve.placement import SpatialPlacer
from repro.serve.slo import SLOTracker
from repro.serve.tenants import Tenant, TenantRegistry, TenantSpec

_ARRIVAL_ORDER = attrgetter("arrival_us", "rid")

#: Elastic-fleet device states (``ServingReport.fleet_states`` values).
FLEET_LIVE = "live"
FLEET_BOOTING = "booting"
FLEET_DRAINING = "draining"
FLEET_PARKED = "parked"

#: Fleet states whose flush obligations are honoured by the batcher.
_SERVABLE_STATES = (FLEET_LIVE, FLEET_DRAINING)


class ServingError(Exception):
    """Frontend misuse (unknown device, unsupported request kind)."""


class _PartitionWorker:
    """Executes batches on one partition over a shared long-lived runtime.

    The runtime (CPU mEnclave + accelerator mEnclave + sRPC channel) is
    created once per partition *generation* and reused across batches and
    tenants — the channel-setup amortization the batcher exists for.  A
    crash abandons the generation; the next batch lazily builds a fresh
    one against the recovered partition.
    """

    def __init__(self, serving: "ServingSystem", device_name: str) -> None:
        self._serving = serving
        self.device_name = device_name
        self.runtime = None
        self._owner: Optional[str] = None
        self.generation = 0
        self.calls = 0
        self.batches = 0

    def ensure_runtime(self):
        if self.runtime is None:
            self.generation += 1
            self._owner = f"serve-{self.device_name}-g{self.generation}"
            self.runtime = self._serving.system.runtime(
                cuda_kernels=self._serving.kernels,
                gpu_name=self.device_name,
                owner=self._owner,
            )
        return self.runtime

    def abandon(self) -> None:
        """Drop the runtime after a crash or retire; scrap CPU-side state."""
        runtime, self.runtime = self.runtime, None
        if runtime is not None:
            try:
                runtime.close()
            except Exception:
                pass  # the peer is gone; there is nothing left to close
        if self._owner is not None:
            try:
                self._serving.system.application(self._owner).shutdown()
            except Exception:
                pass

    def run_request(self, request: Request) -> Tuple[float, bool, bool]:
        """Execute one request; returns (service_us, correct, crashed_after).

        ``crashed_after`` flags a peer failure during post-completion
        cleanup: the result is already in hand, so the request counts as
        completed and only the *worker* needs failover.
        """
        rt = self.runtime
        clock = self._serving.system.clock
        start = clock.now
        rng = np.random.default_rng(request.data_seed)
        a = rng.standard_normal((request.size, request.size)).astype(np.float32)
        expected = a @ a
        ha = rt.cudaMalloc(a.shape)
        hc = rt.cudaMalloc(a.shape)
        rt.cudaMemcpyH2D(ha, a)
        rt.cudaLaunchKernel(request.kind, [ha, ha, hc])
        out = rt.cudaMemcpyD2H(hc)
        crashed_after = False
        try:
            rt.cudaFree(hc)
            rt.cudaFree(ha)
        except (SRPCPeerFailure, SPMError):
            crashed_after = True
        self.calls += 1
        correct = (
            isinstance(out, np.ndarray)
            and out.shape == expected.shape
            and bool(np.allclose(out, expected, atol=1e-2))
        )
        return clock.now - start, correct, crashed_after


class _SyntheticWorker:
    """A worker whose service times come from a model, not the enclave
    stack.

    The scale benchmarks swap this in (``service_model=`` on the
    :class:`ServingSystem`) so a million-request sweep measures the
    *scheduling engine*, not a million simulated matmuls.  Admission,
    placement, batching, deadline checks, SLO accounting and crash
    bookkeeping all run exactly as with the real worker; only
    ``run_request`` differs, returning a deterministic service time that
    is a pure function of the request.
    """

    __slots__ = ("device_name", "generation", "calls", "batches", "_model")

    def __init__(self, device_name: str, model: Callable[[Request], float]) -> None:
        self.device_name = device_name
        self.generation = 0
        self.calls = 0
        self.batches = 0
        self._model = model

    def ensure_runtime(self) -> None:
        if self.generation == 0:
            self.generation = 1

    def abandon(self) -> None:
        pass

    def run_request(self, request: Request) -> Tuple[float, bool, bool]:
        self.calls += 1
        return self._model(request), True, False


@dataclass
class ServingReport:
    """Outcome of one :meth:`ServingSystem.run`."""

    slo_text: str
    fingerprint: str
    makespan_us: float
    admitted: Set[str]
    completed: Dict[str, float]
    """rid -> completion time (simulated us); one entry per completion."""
    expired: Set[str]
    rejected_after_admit: Set[str]
    crashes: Tuple[str, ...]
    wrong_results: int
    duplicates_avoided: int
    batcher_stats: Dict[str, object]
    worker_stats: Dict[str, Dict[str, int]]
    device_seconds: float = 0.0
    """Fleet-on time: sum over devices of live simulated seconds (static
    fleet: every GPU device times the makespan)."""
    scaling_events: Tuple[Tuple[float, str, str], ...] = ()
    """(time_us, action, device) fleet transitions, in application order:
    ``boot``/``retire`` are decisions, ``up``/``park`` completions."""
    scale_fingerprint: str = ""
    """Digest of (initial fleet, boot delay, scaling event log)."""
    initial_live: Tuple[str, ...] = ()
    fleet_states: Dict[str, str] = field(default_factory=dict)

    def scale_schedule(self) -> List[Tuple[float, str, str]]:
        """The replayable decision schedule: feed to ``run(...,
        scale_events=...)`` (with the same ``initial_live`` and
        ``boot_delay_us``) to reproduce this run's fleet byte-for-byte."""
        return [e for e in self.scaling_events if e[1] in DECISION_ACTIONS]

    def audit_exactly_once(self) -> List[str]:
        """At-most-once/no-loss audit; returns violation descriptions."""
        out = []
        overlap = set(self.completed) & self.expired
        for rid in sorted(overlap):
            out.append(f"{rid}: both completed and expired")
        terminal = set(self.completed) | self.expired | self.rejected_after_admit
        for rid in sorted(self.admitted - terminal):
            out.append(f"{rid}: admitted but never completed nor expired")
        for rid in sorted(set(self.completed) - self.admitted):
            out.append(f"{rid}: completed without admission")
        if self.duplicates_avoided:
            out.append(
                f"{self.duplicates_avoided} completed request(s) were re-queued"
            )
        return out


class ServingSystem:
    """Multi-tenant serving frontend over a CronusSystem."""

    def __init__(
        self,
        system,
        *,
        max_batch: int = 8,
        max_delay_us: float = 2_000.0,
        kernels: Tuple[str, ...] = ("matmul",),
        service_model: Optional[Callable[[Request], float]] = None,
        autoscaler: Optional[object] = None,
        initial_live: Optional[Sequence[str]] = None,
        boot_delay_us: Optional[float] = None,
        telemetry: Optional[object] = None,
    ) -> None:
        self.system = system
        self.kernels = kernels
        self.service_model = service_model
        self.registry = TenantRegistry()
        self.admission = AdmissionController(self.registry)
        self.batcher = DeadlineBatcher(max_batch=max_batch, max_delay_us=max_delay_us)
        self.placer = SpatialPlacer(system.dispatcher, incremental=True)
        self.slo = SLOTracker()
        self._workers: Dict[str, object] = {}
        self._free_at: Dict[str, float] = {}
        self._inflight: Dict[str, deque] = {}
        """device -> completion instants of work already flushed to the
        worker but not yet finished at ``_now`` (appended in increasing
        order because ``_free_at`` is monotone per device)."""
        self._down_until: Dict[str, float] = {}
        self._down_heap: List[Tuple[float, str]] = []
        """(ready_at, device) recovery events, mirroring ``_down_until``."""
        self._parked: List[Request] = []
        self._admitted: Set[str] = set()
        self._completed: Dict[str, float] = {}
        self._expired: Set[str] = set()
        self._rejected_after_admit: Set[str] = set()
        self._now = 0.0
        self.crashes: List[str] = []
        self.wrong_results = 0
        self.duplicates_avoided = 0
        self._obs = system.platform.obs
        self._metrics = system.platform.metrics
        self._request_spans: Dict[str, object] = {}
        """rid -> open request root span (serving virtual-time axis)."""
        # -- telemetry pipeline (inert when None) --------------------------
        self.telemetry = telemetry
        self._tel_source = None
        self._next_scrape_us: Optional[float] = None
        if telemetry is not None:
            # Owning engine: attach the underlying system (this enables
            # spans + metrics) and drive the scrape timer from run().
            self._tel_source = telemetry.attach(system, slo=self.slo)
        # -- elastic fleet state (inert when self._fleet is None) ----------
        if autoscaler is None:
            self.autoscaler: Optional[Autoscaler] = None
        elif isinstance(autoscaler, Autoscaler):
            self.autoscaler = autoscaler
        elif isinstance(autoscaler, AutoscalerPolicy):
            self.autoscaler = Autoscaler(autoscaler)
        else:
            raise ServingError(
                "autoscaler must be an AutoscalerPolicy or Autoscaler, got "
                f"{type(autoscaler).__name__}"
            )
        if boot_delay_us is not None:
            self.boot_delay_us = float(boot_delay_us)
        elif self.autoscaler is not None:
            self.boot_delay_us = self.autoscaler.policy.boot_delay_us
        else:
            self.boot_delay_us = 25_000.0
        self._initial_live = tuple(initial_live) if initial_live is not None else None
        self._fleet: Optional[Dict[str, str]] = None
        """device -> live|booting|draining|parked; None = static fleet."""
        self._fleet_since: Dict[str, float] = {}
        """device -> start of its current live interval (virtual us)."""
        self._device_live_us: Dict[str, float] = {}
        self._boot_at: Dict[str, float] = {}
        """device -> virtual instant its boot completes (mirrors booting)."""
        self._park_at: Dict[str, float] = {}
        """device -> virtual instant its drain ends (mirrors draining)."""
        self._next_tick_us: Optional[float] = None
        self._more_arrivals = False
        self.initial_live: Tuple[str, ...] = ()
        self.scaling_events: List[Tuple[float, str, str]] = []
        self._drain_spans: Dict[str, object] = {}
        if self.autoscaler is not None or self._initial_live is not None:
            self._ensure_fleet()

    # -- tenants -----------------------------------------------------------
    def add_tenant(self, spec: TenantSpec) -> Tenant:
        return self.registry.register(spec)

    # -- telemetry ---------------------------------------------------------
    def bind_telemetry(self, source) -> None:
        """Bind a cluster-owned :class:`~repro.obs.telemetry.TelemetrySource`
        for completion/tail-sampling notifications.  Used when a
        :class:`~repro.cluster.serve.ClusterServingSystem` owns the
        pipeline and drives the scrape timer from its own loop."""
        self._tel_source = source

    def _process_scrape(self) -> None:
        """Fire every scrape boundary due at ``_now`` (the last phase of
        an instant, so a scrape observes that instant's settled state)."""
        if self.telemetry is None or self._next_scrape_us is None:
            return
        interval = self.telemetry.scrape_interval_us
        while self._next_scrape_us <= self._now:
            self.telemetry.scrape(self._next_scrape_us)
            self._next_scrape_us += interval

    # -- the elastic fleet -------------------------------------------------
    def _ensure_fleet(self) -> None:
        """Switch to elastic-fleet mode (idempotent).

        The fleet covers every GPU partition the system booted; devices
        outside ``initial_live`` start parked (excluded from placement
        and from the dispatcher's routing table) until a boot decision
        brings them up.  Static-fleet runs never reach this code.
        """
        if self._fleet is not None:
            return
        gpus = sorted(
            name
            for name, mos in self.system.moses.items()
            if mos.device_type == "gpu"
        )
        if not gpus:
            raise ServingError("an elastic fleet requires at least one GPU partition")
        if self._initial_live is None:
            if self.autoscaler is not None:
                live = gpus[: min(len(gpus), self.autoscaler.policy.min_devices)]
            else:
                live = list(gpus)
        else:
            unknown = sorted(set(self._initial_live) - set(gpus))
            if unknown:
                raise ServingError(
                    f"initial_live names unknown GPU devices: {unknown}"
                )
            live = [d for d in gpus if d in set(self._initial_live)]
            if not live:
                raise ServingError("initial_live must name at least one GPU device")
        live_set = set(live)
        self._fleet = {}
        for name in gpus:
            if name in live_set:
                self._fleet[name] = FLEET_LIVE
                self._fleet_since[name] = self._now
            else:
                self._fleet[name] = FLEET_PARKED
                self.system.dispatcher.park(name)
        self.initial_live = tuple(live)
        self.batcher.set_live_filter(self._batcher_live)
        if self._metrics.enabled:
            self._metrics.gauge("serve", "fleet_live").set(len(live))

    def _batcher_live(self, device: str) -> bool:
        """Live filter handed to the batcher: a parked or booting device
        must never surface a flush obligation (the dead-device-resurrect
        bug an elastic fleet would otherwise trip)."""
        fleet = self._fleet
        return fleet is None or fleet.get(device, FLEET_LIVE) in _SERVABLE_STATES

    def _live_count(self) -> int:
        return sum(1 for state in self._fleet.values() if state == FLEET_LIVE)

    def fleet_states(self) -> Dict[str, str]:
        """The fleet state machine's current view (empty when static)."""
        return dict(self._fleet) if self._fleet is not None else {}

    def _record_scale(self, t_us: float, action: str, device: str) -> None:
        self.scaling_events.append((t_us, action, device))
        if self._obs.enabled:
            self._obs.event(
                "serve.scale", category="serve", ts=t_us,
                action=action, device=device, fleet_live=self._live_count(),
            )
        if self._metrics.enabled:
            self._metrics.counter("serve", f"scale_{action}").inc()
            self._metrics.gauge("serve", "fleet_live").set(self._live_count())

    def _accumulate_live(self, device: str, t_us: float) -> None:
        since = self._fleet_since.pop(device, None)
        if since is not None:
            self._device_live_us[device] = (
                self._device_live_us.get(device, 0.0) + (t_us - since)
            )

    def _apply_scale(self, t_us: float, action: str, device: str) -> None:
        if action == SCALE_BOOT:
            self._begin_boot(t_us, device)
        elif action == SCALE_RETIRE:
            self._begin_retire(t_us, device)
        else:
            raise ServingError(
                f"unknown scaling action {action!r}; schedules replay only "
                f"{DECISION_ACTIONS}"
            )

    def _begin_boot(self, t_us: float, device: str) -> None:
        """Start booting a parked partition; live after ``boot_delay_us``."""
        if self._fleet.get(device) != FLEET_PARKED:
            return
        self._fleet[device] = FLEET_BOOTING
        self._boot_at[device] = t_us + self.boot_delay_us
        self._record_scale(t_us, SCALE_BOOT, device)

    def _finish_boot(self, device: str) -> None:
        """Boot window closed: the partition joins the live set and its
        shared sRPC runtime is warmed so the first batch pays no setup."""
        self._fleet[device] = FLEET_LIVE
        self._fleet_since[device] = self._now
        self.system.dispatcher.unpark(device)
        self.placer.mark_dirty(device)
        try:
            self._worker(device).ensure_runtime()
        except (SRPCPeerFailure, NoReadyPartition, SPMError):
            pass  # crashed while booting; recovery re-warms lazily
        self._record_scale(self._now, SCALE_UP, device)
        # New capacity: requests parked for want of a ready partition can
        # now place (same move as the post-recovery path).
        self._replace_parked()

    def _begin_retire(self, t_us: float, device: str) -> None:
        """Retire decision: stop placing, flush pending work, then park.

        This is the crash-failover drain path minus the scrub — the
        partition is healthy, so its pending batch executes normally and
        the runtime closes cleanly once the device runs dry.
        """
        state = self._fleet.get(device)
        if state == FLEET_BOOTING:
            # Cancelled mid-boot: nothing placed yet, park immediately.
            self._boot_at.pop(device, None)
            self._fleet[device] = FLEET_PARKED
            self._record_scale(t_us, SCALE_RETIRE, device)
            self._record_scale(t_us, SCALE_PARK, device)
            return
        if state != FLEET_LIVE:
            return
        self._fleet[device] = FLEET_DRAINING
        self.system.dispatcher.park(device)
        self._record_scale(t_us, SCALE_RETIRE, device)
        if self._obs.enabled:
            self._drain_spans[device] = self._obs.begin(
                "serve.drain", category="serve", detached=True,
                ts=t_us, device=device,
            )
        self._flush(device, reason="drain")
        self._park_at[device] = max(t_us, self._free_at.get(device, 0.0))

    def _finish_park(self, device: str) -> None:
        """Drain complete: close the runtime and leave the fleet."""
        if self._fleet.get(device) != FLEET_DRAINING:
            return
        self._fleet[device] = FLEET_PARKED
        self._accumulate_live(device, self._now)
        worker = self._workers.get(device)
        if worker is not None:
            worker.abandon()
        self.placer.mark_dirty(device)
        self.placer.forget(device)
        self._record_scale(self._now, SCALE_PARK, device)
        self._obs.end(self._drain_spans.pop(device, NO_SPAN), ts=self._now)
        # Backstop: anything still queued (a crash-requeue racing the
        # drain) re-places on the surviving fleet, never runs here.
        for request in self.batcher.evict(device):
            self._place(request)

    def _process_fleet_timers(self) -> None:
        """Fire due boot-completions, then due parks (sorted by device,
        so same-instant transitions are deterministic on both engines)."""
        if self._boot_at:
            for device in sorted(
                d for d, t in self._boot_at.items() if t <= self._now
            ):
                del self._boot_at[device]
                self._finish_boot(device)
        if self._park_at:
            for device in sorted(
                d for d, t in self._park_at.items() if t <= self._now
            ):
                del self._park_at[device]
                self._finish_park(device)

    def _process_tick(self) -> None:
        """Run one autoscaler evaluation if its grid instant has come."""
        scaler = self.autoscaler
        if scaler is None or self._next_tick_us is None:
            return
        if not self._more_arrivals:
            # The arrival stream ended before this tick: cancel it rather
            # than letting a controller-only event stretch the makespan —
            # a replayed schedule has no ticks, and both runs must end at
            # the same final instant.
            self._next_tick_us = None
            return
        if self._next_tick_us > self._now:
            return
        t = self._next_tick_us
        self._next_tick_us = None
        live: List[str] = []
        booting: List[str] = []
        parked: List[str] = []
        for device, state in self._fleet.items():
            if state == FLEET_LIVE:
                live.append(device)
            elif state == FLEET_BOOTING:
                booting.append(device)
            elif state == FLEET_PARKED:
                parked.append(device)
        live.sort()
        booting.sort()
        parked.sort()
        for action, device in scaler.evaluate(
            t, live=live, booting=booting, parked=parked
        ):
            self._apply_scale(t, action, device)
        if self._more_arrivals:
            self._next_tick_us = t + scaler.policy.eval_interval_us

    def _begin_run(self, scale_events: Sequence[Tuple[float, str, str]]):
        """Validate the fixed scale schedule and arm the controller."""
        scale_queue = sorted(scale_events)
        for t_us, action, device in scale_queue:
            if action not in DECISION_ACTIONS:
                raise ServingError(
                    f"scale event at {t_us} has action {action!r}; replayable "
                    f"schedules contain only {DECISION_ACTIONS}"
                )
        if scale_queue:
            self._ensure_fleet()
        if self.autoscaler is not None and self._next_tick_us is None:
            self._next_tick_us = self._now + self.autoscaler.policy.eval_interval_us
        return scale_queue

    # -- the serving loop --------------------------------------------------
    def run(
        self,
        arrivals: Iterable[Request],
        *,
        crash_events: Sequence[Tuple[float, str]] = (),
        scale_events: Sequence[Tuple[float, str, str]] = (),
    ) -> ServingReport:
        """Serve an open-loop arrival stream to completion.

        ``crash_events`` is a sorted-or-not list of ``(time_us, device)``
        partition crashes injected mid-load (the figure-9 scenario lifted
        into the serving layer).  ``scale_events`` is a fixed
        ``(time_us, action, device)`` boot/retire schedule — typically a
        previous autoscaled run's :meth:`ServingReport.scale_schedule` —
        replayed deterministically on the virtual timeline.

        Event-engine loop: each step jumps the virtual clock to the next
        event instant (an O(1) amortized merge of heap/cursor peeks)
        and processes every event due at that instant in the fixed
        recovery → fleet-timer → scale → arrival → crash → flush order,
        which is the same virtual-time semantics as the legacy scan loop.
        """
        pending = sorted(arrivals, key=_ARRIVAL_ORDER)
        crash_queue = sorted(crash_events)
        scale_queue = self._begin_run(scale_events)
        if self.telemetry is not None:
            self._next_scrape_us = self._now + self.telemetry.scrape_interval_us
        ai = ci = si = 0
        n_pending, n_crash = len(pending), len(crash_queue)
        n_scale = len(scale_queue)
        while True:
            self._more_arrivals = ai < n_pending
            now = self._next_event_time(pending, ai, crash_queue, ci, scale_queue, si)
            if now is None:
                break
            if now > self._now:
                self._now = now
            self._process_recoveries()
            if self._fleet is not None:
                self._process_fleet_timers()
                while si < n_scale and scale_queue[si][0] <= self._now:
                    _, action, device = scale_queue[si]
                    self._apply_scale(self._now, action, device)
                    si += 1
                self._process_tick()
            while ai < n_pending and pending[ai].arrival_us <= self._now:
                self.offer(pending[ai])
                ai += 1
            while ci < n_crash and crash_queue[ci][0] <= self._now:
                self.crash_partition(crash_queue[ci][1])
                ci += 1
            for device in self.batcher.due_partitions(self._now):
                self._flush(device)
            self._process_scrape()
        # A parked request with no pending recovery or boot can never run
        # (its partition was torn down outside the serving layer): report
        # it expired rather than losing it silently.
        for request in self._parked:
            self._expire(request)
        self._parked.clear()
        if self.telemetry is not None:
            # Final scrape at the makespan so the tail of the run lands
            # in the store (scrape timers never extend the makespan).
            self.telemetry.scrape(self._now)
            self._next_scrape_us = None
        return self.report()

    def _next_event_time(
        self,
        pending: Sequence[Request],
        ai: int,
        crash_queue: Sequence[Tuple[float, str]],
        ci: int,
        scale_queue: Sequence[Tuple[float, str, str]] = (),
        si: int = 0,
    ) -> Optional[float]:
        """The earliest instant any event source has work, or None.

        Stale recovery-heap entries (their device already recovered under
        a different deadline) are discarded as they surface.
        """
        t: Optional[float] = None
        heap = self._down_heap
        while heap:
            until, device = heap[0]
            if self._down_until.get(device) == until:
                t = until
                break
            heapq.heappop(heap)
        if ai < len(pending):
            arrival = pending[ai].arrival_us
            if t is None or arrival < t:
                t = arrival
        if ci < len(crash_queue):
            crash = crash_queue[ci][0]
            if t is None or crash < t:
                t = crash
        due = self.batcher.earliest_due()
        if due is not None and (t is None or due[0] < t):
            t = due[0]
        if self._fleet is not None:
            # The fleet is architecturally small (<= the SPM partition
            # cap), so min() scans beat heap maintenance here.
            if self._boot_at:
                boot = min(self._boot_at.values())
                if t is None or boot < t:
                    t = boot
            if self._park_at:
                park = min(self._park_at.values())
                if t is None or park < t:
                    t = park
            tick = self._next_tick_us
            if (
                tick is not None
                and self._more_arrivals
                and (t is None or tick < t)
            ):
                t = tick
        if si < len(scale_queue):
            scale = scale_queue[si][0]
            if t is None or scale < t:
                t = scale
        # A scrape deadline only wins when a real event exists after it:
        # telemetry subdivides waits, it never extends the makespan.
        scrape = self._next_scrape_us
        if scrape is not None and t is not None and scrape < t:
            t = scrape
        return t

    def offer(self, request: Request) -> AdmissionDecision:
        """Admit (and place) or reject one request at its arrival time."""
        if request.device_type != "gpu":
            raise ServingError(
                f"request {request.rid!r}: only device_type='gpu' is servable"
            )
        self.slo.record_offered(request)
        span = NO_SPAN
        if self._obs.enabled:
            # Request roots live on the serving layer's *virtual* event
            # axis, so every serve-span timestamp is passed explicitly —
            # never read off the platform clock.
            span = self._obs.begin(
                "serve.request", category="serve", detached=True,
                ts=request.arrival_us, rid=request.rid, tenant=request.tenant,
                size=request.size, deadline_us=request.deadline_us,
            )
        decision = self.admission.offer(request, request.arrival_us)
        scaler = self.autoscaler
        if not decision.admitted:
            self.slo.record_rejected(request, decision.reason)
            if scaler is not None and decision.reason == REJECT_QUEUE_FULL:
                # Queue-full is the admission signal the fleet can fix:
                # the tenant's in-flight window is clogged with work
                # waiting on capacity (rate-limit rejections are not).
                scaler.observe_rejection(request.arrival_us)
            self._obs.end(
                span, ts=request.arrival_us, outcome="rejected",
                reason=decision.reason,
            )
            if self._tel_source is not None and span.context is not None:
                # Tail-sample the rejection trace away immediately: a
                # one-span rejected trace is never worth its memory.
                self._tel_source.request_done(
                    span.context.trace_id, latency_us=0.0,
                    outcome="rejected", tenant=request.tenant,
                )
            if self._metrics.enabled:
                self._metrics.counter("serve", "rejected").inc()
            return decision
        self.slo.record_admitted(request)
        self._admitted.add(request.rid)
        if scaler is not None:
            scaler.observe_arrival(request.arrival_us)
        if span is not NO_SPAN:
            self._request_spans[request.rid] = span
        if self._metrics.enabled:
            self._metrics.counter("serve", "admitted").inc()
        self._place(request)
        return decision

    # -- placement and batching --------------------------------------------
    def _is_ready(self, mos) -> bool:
        device = mos.partition.device.name
        if self._fleet is not None and self._fleet.get(device, FLEET_LIVE) != FLEET_LIVE:
            return False
        return self._down_until.get(device, self._now) <= self._now

    def _effective_depth(self, device_name: str) -> int:
        """Pending queue depth plus requests still executing on the worker.

        The batcher's per-device queue empties at every flush, but the
        flushed work keeps the device busy until its completion instants
        pass.  Scoring on the pending count alone made the placer stuff a
        saturated device whose queue had just been flushed (its depth read
        0 while its worker backlog grew without bound); counting the
        not-yet-finished flushed requests keeps placement balanced against
        actual device occupancy.  Integer arithmetic on recorded
        completion instants, so both engines compute the same value.
        """
        backlog = self._inflight.get(device_name)
        extra = 0
        if backlog:
            now = self._now
            while backlog and backlog[0] <= now:
                backlog.popleft()
            extra = len(backlog)
        return self.batcher.depth(device_name) + extra

    def _place(self, request: Request) -> None:
        try:
            mos = self.placer.place(
                request, self._effective_depth, is_ready=self._is_ready
            )
        except NoReadyPartition:
            self._parked.append(request)
            if self.autoscaler is not None:
                self.autoscaler.observe_parked(self._now)
            if self._obs.enabled:
                self._obs.event(
                    "serve.park", category="serve", ts=self._now,
                    parent=self._request_context(request.rid), rid=request.rid,
                )
            if self._metrics.enabled:
                self._metrics.counter("serve", "parked").inc()
            return
        except DispatchError:
            # No partition manages such a device at all: terminal.
            self.slo.record_rejected(request, REJECT_NO_PARTITION)
            self.admission.settle(request)
            self._rejected_after_admit.add(request.rid)
            span = self._request_spans.pop(request.rid, NO_SPAN)
            self._obs.end(
                span, ts=self._now, outcome="rejected", reason=REJECT_NO_PARTITION,
            )
            if self._tel_source is not None and span.context is not None:
                self._tel_source.request_done(
                    span.context.trace_id,
                    latency_us=self._now - request.arrival_us,
                    outcome="failed",
                    tenant=request.tenant,
                )
            return
        device = mos.partition.device.name
        if self.batcher.add(device, request, self._now):
            self._flush(device, reason="full")

    def _request_context(self, rid: str):
        span = self._request_spans.get(rid)
        return getattr(span, "context", None)

    def _flush(self, device: str, *, reason: str = "due") -> None:
        fleet = self._fleet
        if fleet is not None and fleet.get(device, FLEET_LIVE) not in _SERVABLE_STATES:
            # A stale flush obligation for a parked/booting partition must
            # never resurrect it with a fresh worker: re-place the work on
            # the surviving fleet (the drain path, minus the scrub).
            for request in self.batcher.evict(device):
                self._place(request)
            return
        batch = self.batcher.flush(device, self._now, reason=reason)
        if batch is not None:
            self._execute_batch(batch)

    # -- execution ---------------------------------------------------------
    def _worker(self, device: str):
        worker = self._workers.get(device)
        if worker is None:
            if self.service_model is not None:
                worker = _SyntheticWorker(device, self.service_model)
            else:
                worker = _PartitionWorker(self, device)
            self._workers[device] = worker
        return worker

    def _execute_batch(self, batch) -> None:
        device = batch.device_name
        worker = self._worker(device)
        inflight = self._inflight.setdefault(device, deque())
        start = max(batch.formed_us, self._free_at.get(device, 0.0))
        clock = self.system.clock
        cum = 0.0
        leftover: List[Request] = []
        crashed = False
        obs_on = self._obs.enabled
        scaler = self.autoscaler
        partition = (
            self.system.spm.partition_for_device(device).name if obs_on else None
        )
        batch_span = NO_SPAN
        if obs_on:
            batch_span = self._obs.begin(
                "serve.batch", category="serve", detached=True, ts=start,
                partition=partition, device=device, size=len(batch.requests),
                reason=batch.reason,
            )
        setup_start = clock.now
        try:
            worker.ensure_runtime()
        except (SRPCPeerFailure, NoReadyPartition, SPMError):
            crashed = True
            leftover = list(batch.requests)
        cum += clock.now - setup_start
        if not crashed:
            worker.batches += 1
            for index, request in enumerate(batch.requests):
                if request.rid in self._completed or request.rid in self._expired:
                    # At-most-once guard: a settled request never re-runs.
                    self.duplicates_avoided += 1
                    self.slo.record_duplicate_avoided(request)
                    continue
                if start + cum > request.deadline_us:
                    self._expire(request, device=device)
                    continue
                exec_start = start + cum
                try:
                    service, correct, crashed_after = worker.run_request(request)
                except (SRPCPeerFailure, NoReadyPartition, SPMError):
                    crashed = True
                    leftover = [request] + list(batch.requests[index + 1:])
                    break
                cum += service
                if obs_on:
                    self._obs.record(
                        "serve.execute", category="serve",
                        start_us=exec_start, end_us=start + cum,
                        parent=self._request_context(request.rid),
                        partition=partition, rid=request.rid,
                        batch_span=getattr(batch_span, "context", None)
                        and batch_span.context.span_id,
                    )
                if self._metrics.enabled:
                    self._metrics.histogram("serve", "service_us").observe(service)
                inflight.append(start + cum)
                self._complete(request, start + cum, correct)
                if scaler is not None:
                    scaler.observe_completion(
                        start + cum, start + cum - request.arrival_us, service
                    )
                if crashed_after:
                    crashed = True
                    leftover = list(batch.requests[index + 1:])
                    break
        self._free_at[device] = start + cum
        # Executing on the device moved its live contexts / reservations.
        self.placer.mark_dirty(device)
        self._obs.end(batch_span, ts=start + cum, crashed=crashed)
        if self._metrics.enabled:
            self._metrics.counter("serve", "batches").inc()
            self._metrics.histogram("serve", "batch_us").observe(cum)
        if crashed:
            self._handle_worker_failure(device, leftover)

    def _complete(self, request: Request, completion_us: float, correct: bool) -> None:
        self._completed[request.rid] = completion_us
        if not correct:
            self.wrong_results += 1
        self.slo.record_completed(request, completion_us)
        self.admission.settle(request)
        span = self._request_spans.pop(request.rid, NO_SPAN)
        self._obs.end(span, ts=completion_us, outcome="completed", correct=correct)
        if self._tel_source is not None and span.context is not None:
            self._tel_source.request_done(
                span.context.trace_id,
                latency_us=completion_us - request.arrival_us,
                outcome="completed" if correct else "error",
                tenant=request.tenant,
            )
        if self._metrics.enabled:
            self._metrics.counter("serve", "completed").inc()
            self._metrics.histogram("serve", "latency_us").observe(
                completion_us - request.arrival_us
            )

    def _expire(self, request: Request, *, device: Optional[str] = None) -> None:
        self._expired.add(request.rid)
        self.slo.record_expired(request)
        self.admission.settle(request)
        if device is not None:
            # Settling releases the tenant's reserved bytes; the device it
            # was queued on must rescore or incremental placement diverges
            # from a full recompute (the expiry-path mark_dirty fix).
            self.placer.mark_dirty(device)
        span = self._request_spans.pop(request.rid, NO_SPAN)
        self._obs.end(span, ts=self._now, outcome="expired")
        if self._tel_source is not None and span.context is not None:
            self._tel_source.request_done(
                span.context.trace_id,
                latency_us=self._now - request.arrival_us,
                outcome="expired",
                tenant=request.tenant,
            )
        if self._metrics.enabled:
            self._metrics.counter("serve", "expired").inc()

    # -- failure handling --------------------------------------------------
    def crash_partition(self, device: str) -> float:
        """Crash ``device``'s partition mid-load (background recovery).

        Returns the recovery window's end (simulated us).  Pending and
        in-flight requests are re-queued by the failover path; the caller
        normally lets :meth:`run` drive this via ``crash_events``.
        """
        if self.system.moses.get(device) is None:
            raise ServingError(f"no partition manages device {device!r}")
        if device in self._down_until:
            return self._down_until[device]
        rec = self.system.fail_partition(device, background=True)
        ready_at = self._now + rec.total_us
        self._down_until[device] = ready_at
        heapq.heappush(self._down_heap, (ready_at, device))
        self.placer.mark_dirty(device)
        self.crashes.append(device)
        if self._obs.enabled:
            self._obs.event(
                "serve.crash", category="serve", ts=self._now,
                device=device, ready_at_us=ready_at,
            )
        if self._metrics.enabled:
            self._metrics.counter("serve", "crashes").inc()
        self._handle_worker_failure(device, [])
        return ready_at

    def injected_crash(self, device: str) -> None:
        """`FaultInjector` crash-handler hook: mark the partition down.

        Called synchronously from an injection site mid-execution; the
        subsequent shared-memory access traps, surfaces as
        ``SRPCPeerFailure`` in the executing batch, and the normal
        failover path re-queues the unfinished requests.
        """
        mos = self.system.moses.get(device)
        if mos is None or device in self._down_until:
            return
        rec = self.system.fail_partition(device, background=True)
        ready_at = self._now + rec.total_us
        self._down_until[device] = ready_at
        heapq.heappush(self._down_heap, (ready_at, device))
        self.placer.mark_dirty(device)
        self.crashes.append(device)
        if self._obs.enabled:
            self._obs.event(
                "serve.crash", category="serve", ts=self._now,
                device=device, ready_at_us=ready_at,
                injected=True,
            )
        if self._metrics.enabled:
            self._metrics.counter("serve", "crashes").inc()

    def _handle_worker_failure(self, device: str, leftover: List[Request]) -> None:
        """Abandon the worker and re-queue admitted-but-unfinished work."""
        worker = self._workers.get(device)
        if worker is not None:
            worker.abandon()
        self.placer.mark_dirty(device)
        requeue = list(leftover)
        if device in self._down_until or not self._batcher_live(device):
            requeue.extend(self.batcher.evict(device))
        for request in requeue:
            self.slo.record_requeued(request)
            context = self._request_context(request.rid)
            if self._tel_source is not None and context is not None:
                # This trace crossed a crash: pin it in the tail sampler.
                self._tel_source.note_recovery(context.trace_id)
            if self._obs.enabled:
                self._obs.event(
                    "serve.requeue", category="serve", ts=self._now,
                    parent=context,
                    rid=request.rid, from_device=device,
                )
            if self._metrics.enabled:
                self._metrics.counter("serve", "requeued").inc()
            self._place(request)

    def _replace_parked(self) -> None:
        """Re-place requests parked for want of capacity (post-recovery
        and post-boot); anything already past its deadline expires."""
        if not self._parked:
            return
        parked, self._parked = self._parked, []
        for request in parked:
            if request.deadline_us < self._now:
                self._expire(request)
            else:
                self._place(request)

    def _process_recoveries(self) -> None:
        heap = self._down_heap
        recovered: List[str] = []
        while heap and heap[0][0] <= self._now:
            until, device = heapq.heappop(heap)
            if self._down_until.get(device) == until:
                del self._down_until[device]
                recovered.append(device)
        if not recovered:
            return
        for device in recovered:
            self.placer.mark_dirty(device)
        self._replace_parked()

    # -- reporting ---------------------------------------------------------
    def _device_seconds(self) -> float:
        """Fleet-on simulated seconds: live intervals summed per device.

        A static fleet keeps every GPU partition powered for the whole
        run; the elastic fleet only pays for the intervals the autoscaler
        kept each device live (booting/draining time counts as live — the
        device is powered while the mOS loads and the drain finishes)."""
        if self._fleet is None:
            gpus = sum(
                1 for mos in self.system.moses.values() if mos.device_type == "gpu"
            )
            return gpus * self._now / 1e6
        total = 0.0
        for device in sorted(set(self._device_live_us) | set(self._fleet_since)):
            total += self._device_live_us.get(device, 0.0)
            since = self._fleet_since.get(device)
            if since is not None:
                total += self._now - since
        return total / 1e6

    def scale_fingerprint(self) -> str:
        """Digest of the fleet trajectory — byte-identical across replays."""
        lines = [
            f"initial={','.join(self.initial_live)} "
            f"boot_delay_us={self.boot_delay_us:.3f}"
        ]
        lines += [
            f"{t_us:.6f} {action} {device}"
            for t_us, action, device in self.scaling_events
        ]
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()

    def report(self) -> ServingReport:
        if self._metrics.enabled:
            self._metrics.absorb("serve.batcher", self.batcher.stats)
            if self.autoscaler is not None:
                self._metrics.absorb("serve.autoscaler", self.autoscaler.stats)
            for device, worker in sorted(self._workers.items()):
                self._metrics.absorb(
                    f"serve.worker:{device}",
                    {
                        "batches": worker.batches,
                        "requests": worker.calls,
                        "generations": worker.generation,
                    },
                )
        return ServingReport(
            slo_text=self.slo.table(),
            fingerprint=self.slo.fingerprint(),
            makespan_us=self._now,
            admitted=set(self._admitted),
            completed=dict(self._completed),
            expired=set(self._expired),
            rejected_after_admit=set(self._rejected_after_admit),
            crashes=tuple(self.crashes),
            wrong_results=self.wrong_results,
            duplicates_avoided=self.duplicates_avoided,
            batcher_stats=self.batcher.stats,
            worker_stats={
                d: {
                    "batches": w.batches,
                    "requests": w.calls,
                    "generations": w.generation,
                }
                for d, w in sorted(self._workers.items())
            },
            device_seconds=self._device_seconds(),
            scaling_events=tuple(self.scaling_events),
            scale_fingerprint=self.scale_fingerprint(),
            initial_live=self.initial_live,
            fleet_states=self.fleet_states(),
        )
