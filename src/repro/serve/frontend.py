"""The ServingSystem façade: tenants → admission → batching → mEnclaves.

Turns a booted :class:`~repro.systems.cronus.CronusSystem` into a
multi-tenant inference frontend.  Offered requests pass admission control,
are placed onto a partition by the spatial-sharing placer, ride the
partition's shared long-lived sRPC runtime in deadline-ordered batches,
and are accounted per tenant by the SLO tracker.

Two notions of time coexist (see ``docs/serving.md``):

* The serving layer runs an **open-loop virtual event timeline**
  (arrivals, batch-flush deadlines, crash and recovery instants) — the
  time axis all SLO metrics use.  Per-partition ``free_at`` bookkeeping
  models the partitions draining their queues concurrently.
* The **platform clock** is the execution-cost meter: each batch really
  executes on the mEnclave stack, and the clock delta it produces is the
  batch's service time.  The global clock serializes all partitions'
  work, so it is *not* used directly as a latency axis.

The inner loop is a **heap-driven event engine** (the raw-speed engine
refactor): the four event sources — the sorted arrival trace and crash
schedule (cursor peeks), partition recoveries (a min-heap with lazy
deletion), and batch-flush obligations (the batcher's due heap) — are
merged by next-event time, so one simulated second of open-loop traffic
costs O(events · log n) host work.  The pre-heap implementation rebuilt
an event list and re-scanned every pending queue per step, which was
O(events · n); it survives verbatim as
:class:`~repro.serve.legacy.LegacyServingSystem` and the scheduler
equivalence suite asserts both engines produce byte-identical SLO tables,
completion orders and audits from the same seeded trace.

Failover (the section IV-D story, lifted to the serving layer): a
partition crash mid-request surfaces as
:class:`~repro.rpc.channel.SRPCPeerFailure`; the frontend re-queues every
admitted-but-unfinished request — never a completed one — and re-places
it on a surviving partition, or parks it until the crashed partition's
background recovery window closes.  A completed-request registry makes
completion **at-most-once**: each admitted request completes exactly once
or is reported expired, never duplicated.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from operator import attrgetter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.dispatch.dispatcher import DispatchError, NoReadyPartition
from repro.obs.span import NO_SPAN
from repro.rpc.channel import SRPCPeerFailure
from repro.secure.spm import SPMError
from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    REJECT_NO_PARTITION,
    Request,
)
from repro.serve.batcher import DeadlineBatcher
from repro.serve.placement import SpatialPlacer
from repro.serve.slo import SLOTracker
from repro.serve.tenants import Tenant, TenantRegistry, TenantSpec

_ARRIVAL_ORDER = attrgetter("arrival_us", "rid")


class ServingError(Exception):
    """Frontend misuse (unknown device, unsupported request kind)."""


class _PartitionWorker:
    """Executes batches on one partition over a shared long-lived runtime.

    The runtime (CPU mEnclave + accelerator mEnclave + sRPC channel) is
    created once per partition *generation* and reused across batches and
    tenants — the channel-setup amortization the batcher exists for.  A
    crash abandons the generation; the next batch lazily builds a fresh
    one against the recovered partition.
    """

    def __init__(self, serving: "ServingSystem", device_name: str) -> None:
        self._serving = serving
        self.device_name = device_name
        self.runtime = None
        self._owner: Optional[str] = None
        self.generation = 0
        self.calls = 0
        self.batches = 0

    def ensure_runtime(self):
        if self.runtime is None:
            self.generation += 1
            self._owner = f"serve-{self.device_name}-g{self.generation}"
            self.runtime = self._serving.system.runtime(
                cuda_kernels=self._serving.kernels,
                gpu_name=self.device_name,
                owner=self._owner,
            )
        return self.runtime

    def abandon(self) -> None:
        """Drop the runtime after a crash; scrap surviving CPU-side state."""
        runtime, self.runtime = self.runtime, None
        if runtime is not None:
            try:
                runtime.close()
            except Exception:
                pass  # the peer is gone; there is nothing left to close
        if self._owner is not None:
            try:
                self._serving.system.application(self._owner).shutdown()
            except Exception:
                pass

    def run_request(self, request: Request) -> Tuple[float, bool, bool]:
        """Execute one request; returns (service_us, correct, crashed_after).

        ``crashed_after`` flags a peer failure during post-completion
        cleanup: the result is already in hand, so the request counts as
        completed and only the *worker* needs failover.
        """
        rt = self.runtime
        clock = self._serving.system.clock
        start = clock.now
        rng = np.random.default_rng(request.data_seed)
        a = rng.standard_normal((request.size, request.size)).astype(np.float32)
        expected = a @ a
        ha = rt.cudaMalloc(a.shape)
        hc = rt.cudaMalloc(a.shape)
        rt.cudaMemcpyH2D(ha, a)
        rt.cudaLaunchKernel(request.kind, [ha, ha, hc])
        out = rt.cudaMemcpyD2H(hc)
        crashed_after = False
        try:
            rt.cudaFree(hc)
            rt.cudaFree(ha)
        except (SRPCPeerFailure, SPMError):
            crashed_after = True
        self.calls += 1
        correct = (
            isinstance(out, np.ndarray)
            and out.shape == expected.shape
            and bool(np.allclose(out, expected, atol=1e-2))
        )
        return clock.now - start, correct, crashed_after


class _SyntheticWorker:
    """A worker whose service times come from a model, not the enclave
    stack.

    The scale benchmarks swap this in (``service_model=`` on the
    :class:`ServingSystem`) so a million-request sweep measures the
    *scheduling engine*, not a million simulated matmuls.  Admission,
    placement, batching, deadline checks, SLO accounting and crash
    bookkeeping all run exactly as with the real worker; only
    ``run_request`` differs, returning a deterministic service time that
    is a pure function of the request.
    """

    __slots__ = ("device_name", "generation", "calls", "batches", "_model")

    def __init__(self, device_name: str, model: Callable[[Request], float]) -> None:
        self.device_name = device_name
        self.generation = 0
        self.calls = 0
        self.batches = 0
        self._model = model

    def ensure_runtime(self) -> None:
        if self.generation == 0:
            self.generation = 1

    def abandon(self) -> None:
        pass

    def run_request(self, request: Request) -> Tuple[float, bool, bool]:
        self.calls += 1
        return self._model(request), True, False


@dataclass
class ServingReport:
    """Outcome of one :meth:`ServingSystem.run`."""

    slo_text: str
    fingerprint: str
    makespan_us: float
    admitted: Set[str]
    completed: Dict[str, float]
    """rid -> completion time (simulated us); one entry per completion."""
    expired: Set[str]
    rejected_after_admit: Set[str]
    crashes: Tuple[str, ...]
    wrong_results: int
    duplicates_avoided: int
    batcher_stats: Dict[str, object]
    worker_stats: Dict[str, Dict[str, int]]

    def audit_exactly_once(self) -> List[str]:
        """At-most-once/no-loss audit; returns violation descriptions."""
        out = []
        overlap = set(self.completed) & self.expired
        for rid in sorted(overlap):
            out.append(f"{rid}: both completed and expired")
        terminal = set(self.completed) | self.expired | self.rejected_after_admit
        for rid in sorted(self.admitted - terminal):
            out.append(f"{rid}: admitted but never completed nor expired")
        for rid in sorted(set(self.completed) - self.admitted):
            out.append(f"{rid}: completed without admission")
        if self.duplicates_avoided:
            out.append(
                f"{self.duplicates_avoided} completed request(s) were re-queued"
            )
        return out


class ServingSystem:
    """Multi-tenant serving frontend over a CronusSystem."""

    def __init__(
        self,
        system,
        *,
        max_batch: int = 8,
        max_delay_us: float = 2_000.0,
        kernels: Tuple[str, ...] = ("matmul",),
        service_model: Optional[Callable[[Request], float]] = None,
    ) -> None:
        self.system = system
        self.kernels = kernels
        self.service_model = service_model
        self.registry = TenantRegistry()
        self.admission = AdmissionController(self.registry)
        self.batcher = DeadlineBatcher(max_batch=max_batch, max_delay_us=max_delay_us)
        self.placer = SpatialPlacer(system.dispatcher, incremental=True)
        self.slo = SLOTracker()
        self._workers: Dict[str, object] = {}
        self._free_at: Dict[str, float] = {}
        self._down_until: Dict[str, float] = {}
        self._down_heap: List[Tuple[float, str]] = []
        """(ready_at, device) recovery events, mirroring ``_down_until``."""
        self._parked: List[Request] = []
        self._admitted: Set[str] = set()
        self._completed: Dict[str, float] = {}
        self._expired: Set[str] = set()
        self._rejected_after_admit: Set[str] = set()
        self._now = 0.0
        self.crashes: List[str] = []
        self.wrong_results = 0
        self.duplicates_avoided = 0
        self._obs = system.platform.obs
        self._metrics = system.platform.metrics
        self._request_spans: Dict[str, object] = {}
        """rid -> open request root span (serving virtual-time axis)."""

    # -- tenants -----------------------------------------------------------
    def add_tenant(self, spec: TenantSpec) -> Tenant:
        return self.registry.register(spec)

    # -- the serving loop --------------------------------------------------
    def run(
        self,
        arrivals: Iterable[Request],
        *,
        crash_events: Sequence[Tuple[float, str]] = (),
    ) -> ServingReport:
        """Serve an open-loop arrival stream to completion.

        ``crash_events`` is a sorted-or-not list of ``(time_us, device)``
        partition crashes injected mid-load (the figure-9 scenario lifted
        into the serving layer).

        Event-engine loop: each step jumps the virtual clock to the next
        event instant (an O(1) amortized merge of four heap/cursor peeks)
        and processes every event due at that instant in the fixed
        recovery → arrival → crash → flush order, which is the same
        virtual-time semantics as the legacy scan loop.
        """
        pending = sorted(arrivals, key=_ARRIVAL_ORDER)
        crash_queue = sorted(crash_events)
        ai = ci = 0
        n_pending, n_crash = len(pending), len(crash_queue)
        while True:
            now = self._next_event_time(pending, ai, crash_queue, ci)
            if now is None:
                break
            if now > self._now:
                self._now = now
            self._process_recoveries()
            while ai < n_pending and pending[ai].arrival_us <= self._now:
                self.offer(pending[ai])
                ai += 1
            while ci < n_crash and crash_queue[ci][0] <= self._now:
                self.crash_partition(crash_queue[ci][1])
                ci += 1
            for device in self.batcher.due_partitions(self._now):
                self._flush(device)
        # A parked request with no pending recovery can never run (its
        # partition was torn down outside the serving layer): report it
        # expired rather than losing it silently.
        for request in self._parked:
            self._expire(request)
        self._parked.clear()
        return self.report()

    def _next_event_time(
        self,
        pending: Sequence[Request],
        ai: int,
        crash_queue: Sequence[Tuple[float, str]],
        ci: int,
    ) -> Optional[float]:
        """The earliest instant any event source has work, or None.

        Stale recovery-heap entries (their device already recovered under
        a different deadline) are discarded as they surface.
        """
        t: Optional[float] = None
        heap = self._down_heap
        while heap:
            until, device = heap[0]
            if self._down_until.get(device) == until:
                t = until
                break
            heapq.heappop(heap)
        if ai < len(pending):
            arrival = pending[ai].arrival_us
            if t is None or arrival < t:
                t = arrival
        if ci < len(crash_queue):
            crash = crash_queue[ci][0]
            if t is None or crash < t:
                t = crash
        due = self.batcher.earliest_due()
        if due is not None and (t is None or due[0] < t):
            t = due[0]
        return t

    def offer(self, request: Request) -> AdmissionDecision:
        """Admit (and place) or reject one request at its arrival time."""
        if request.device_type != "gpu":
            raise ServingError(
                f"request {request.rid!r}: only device_type='gpu' is servable"
            )
        self.slo.record_offered(request)
        span = NO_SPAN
        if self._obs.enabled:
            # Request roots live on the serving layer's *virtual* event
            # axis, so every serve-span timestamp is passed explicitly —
            # never read off the platform clock.
            span = self._obs.begin(
                "serve.request", category="serve", detached=True,
                ts=request.arrival_us, rid=request.rid, tenant=request.tenant,
                size=request.size, deadline_us=request.deadline_us,
            )
        decision = self.admission.offer(request, request.arrival_us)
        if not decision.admitted:
            self.slo.record_rejected(request, decision.reason)
            self._obs.end(
                span, ts=request.arrival_us, outcome="rejected",
                reason=decision.reason,
            )
            if self._metrics.enabled:
                self._metrics.counter("serve", "rejected").inc()
            return decision
        self.slo.record_admitted(request)
        self._admitted.add(request.rid)
        if span is not NO_SPAN:
            self._request_spans[request.rid] = span
        if self._metrics.enabled:
            self._metrics.counter("serve", "admitted").inc()
        self._place(request)
        return decision

    # -- placement and batching --------------------------------------------
    def _is_ready(self, mos) -> bool:
        device = mos.partition.device.name
        return self._down_until.get(device, self._now) <= self._now

    def _place(self, request: Request) -> None:
        try:
            mos = self.placer.place(
                request, self.batcher.depth, is_ready=self._is_ready
            )
        except NoReadyPartition:
            self._parked.append(request)
            if self._obs.enabled:
                self._obs.event(
                    "serve.park", category="serve", ts=self._now,
                    parent=self._request_context(request.rid), rid=request.rid,
                )
            if self._metrics.enabled:
                self._metrics.counter("serve", "parked").inc()
            return
        except DispatchError:
            # No partition manages such a device at all: terminal.
            self.slo.record_rejected(request, REJECT_NO_PARTITION)
            self.admission.settle(request)
            self._rejected_after_admit.add(request.rid)
            self._obs.end(
                self._request_spans.pop(request.rid, NO_SPAN),
                ts=self._now, outcome="rejected", reason=REJECT_NO_PARTITION,
            )
            return
        device = mos.partition.device.name
        if self.batcher.add(device, request, self._now):
            self._flush(device, reason="full")

    def _request_context(self, rid: str):
        span = self._request_spans.get(rid)
        return getattr(span, "context", None)

    def _flush(self, device: str, *, reason: str = "due") -> None:
        batch = self.batcher.flush(device, self._now, reason=reason)
        if batch is not None:
            self._execute_batch(batch)

    # -- execution ---------------------------------------------------------
    def _worker(self, device: str):
        worker = self._workers.get(device)
        if worker is None:
            if self.service_model is not None:
                worker = _SyntheticWorker(device, self.service_model)
            else:
                worker = _PartitionWorker(self, device)
            self._workers[device] = worker
        return worker

    def _execute_batch(self, batch) -> None:
        device = batch.device_name
        worker = self._worker(device)
        start = max(batch.formed_us, self._free_at.get(device, 0.0))
        clock = self.system.clock
        cum = 0.0
        leftover: List[Request] = []
        crashed = False
        obs_on = self._obs.enabled
        partition = (
            self.system.spm.partition_for_device(device).name if obs_on else None
        )
        batch_span = NO_SPAN
        if obs_on:
            batch_span = self._obs.begin(
                "serve.batch", category="serve", detached=True, ts=start,
                partition=partition, device=device, size=len(batch.requests),
                reason=batch.reason,
            )
        setup_start = clock.now
        try:
            worker.ensure_runtime()
        except (SRPCPeerFailure, NoReadyPartition, SPMError):
            crashed = True
            leftover = list(batch.requests)
        cum += clock.now - setup_start
        if not crashed:
            worker.batches += 1
            for index, request in enumerate(batch.requests):
                if request.rid in self._completed or request.rid in self._expired:
                    # At-most-once guard: a settled request never re-runs.
                    self.duplicates_avoided += 1
                    self.slo.record_duplicate_avoided(request)
                    continue
                if start + cum > request.deadline_us:
                    self._expire(request)
                    continue
                exec_start = start + cum
                try:
                    service, correct, crashed_after = worker.run_request(request)
                except (SRPCPeerFailure, NoReadyPartition, SPMError):
                    crashed = True
                    leftover = [request] + list(batch.requests[index + 1:])
                    break
                cum += service
                if obs_on:
                    self._obs.record(
                        "serve.execute", category="serve",
                        start_us=exec_start, end_us=start + cum,
                        parent=self._request_context(request.rid),
                        partition=partition, rid=request.rid,
                        batch_span=getattr(batch_span, "context", None)
                        and batch_span.context.span_id,
                    )
                if self._metrics.enabled:
                    self._metrics.histogram("serve", "service_us").observe(service)
                self._complete(request, start + cum, correct)
                if crashed_after:
                    crashed = True
                    leftover = list(batch.requests[index + 1:])
                    break
        self._free_at[device] = start + cum
        # Executing on the device moved its live contexts / reservations.
        self.placer.mark_dirty(device)
        self._obs.end(batch_span, ts=start + cum, crashed=crashed)
        if self._metrics.enabled:
            self._metrics.counter("serve", "batches").inc()
            self._metrics.histogram("serve", "batch_us").observe(cum)
        if crashed:
            self._handle_worker_failure(device, leftover)

    def _complete(self, request: Request, completion_us: float, correct: bool) -> None:
        self._completed[request.rid] = completion_us
        if not correct:
            self.wrong_results += 1
        self.slo.record_completed(request, completion_us)
        self.admission.settle(request)
        self._obs.end(
            self._request_spans.pop(request.rid, NO_SPAN),
            ts=completion_us, outcome="completed", correct=correct,
        )
        if self._metrics.enabled:
            self._metrics.counter("serve", "completed").inc()
            self._metrics.histogram("serve", "latency_us").observe(
                completion_us - request.arrival_us
            )

    def _expire(self, request: Request) -> None:
        self._expired.add(request.rid)
        self.slo.record_expired(request)
        self.admission.settle(request)
        self._obs.end(
            self._request_spans.pop(request.rid, NO_SPAN),
            ts=self._now, outcome="expired",
        )
        if self._metrics.enabled:
            self._metrics.counter("serve", "expired").inc()

    # -- failure handling --------------------------------------------------
    def crash_partition(self, device: str) -> float:
        """Crash ``device``'s partition mid-load (background recovery).

        Returns the recovery window's end (simulated us).  Pending and
        in-flight requests are re-queued by the failover path; the caller
        normally lets :meth:`run` drive this via ``crash_events``.
        """
        if self.system.moses.get(device) is None:
            raise ServingError(f"no partition manages device {device!r}")
        if device in self._down_until:
            return self._down_until[device]
        rec = self.system.fail_partition(device, background=True)
        ready_at = self._now + rec.total_us
        self._down_until[device] = ready_at
        heapq.heappush(self._down_heap, (ready_at, device))
        self.placer.mark_dirty(device)
        self.crashes.append(device)
        if self._obs.enabled:
            self._obs.event(
                "serve.crash", category="serve", ts=self._now,
                device=device, ready_at_us=ready_at,
            )
        if self._metrics.enabled:
            self._metrics.counter("serve", "crashes").inc()
        self._handle_worker_failure(device, [])
        return ready_at

    def injected_crash(self, device: str) -> None:
        """`FaultInjector` crash-handler hook: mark the partition down.

        Called synchronously from an injection site mid-execution; the
        subsequent shared-memory access traps, surfaces as
        ``SRPCPeerFailure`` in the executing batch, and the normal
        failover path re-queues the unfinished requests.
        """
        mos = self.system.moses.get(device)
        if mos is None or device in self._down_until:
            return
        rec = self.system.fail_partition(device, background=True)
        ready_at = self._now + rec.total_us
        self._down_until[device] = ready_at
        heapq.heappush(self._down_heap, (ready_at, device))
        self.placer.mark_dirty(device)
        self.crashes.append(device)
        if self._obs.enabled:
            self._obs.event(
                "serve.crash", category="serve", ts=self._now,
                device=device, ready_at_us=ready_at,
                injected=True,
            )
        if self._metrics.enabled:
            self._metrics.counter("serve", "crashes").inc()

    def _handle_worker_failure(self, device: str, leftover: List[Request]) -> None:
        """Abandon the worker and re-queue admitted-but-unfinished work."""
        worker = self._workers.get(device)
        if worker is not None:
            worker.abandon()
        self.placer.mark_dirty(device)
        requeue = list(leftover)
        if device in self._down_until:
            requeue.extend(self.batcher.evict(device))
        for request in requeue:
            self.slo.record_requeued(request)
            if self._obs.enabled:
                self._obs.event(
                    "serve.requeue", category="serve", ts=self._now,
                    parent=self._request_context(request.rid),
                    rid=request.rid, from_device=device,
                )
            if self._metrics.enabled:
                self._metrics.counter("serve", "requeued").inc()
            self._place(request)

    def _process_recoveries(self) -> None:
        heap = self._down_heap
        recovered: List[str] = []
        while heap and heap[0][0] <= self._now:
            until, device = heapq.heappop(heap)
            if self._down_until.get(device) == until:
                del self._down_until[device]
                recovered.append(device)
        if not recovered:
            return
        for device in recovered:
            self.placer.mark_dirty(device)
        if self._parked:
            parked, self._parked = self._parked, []
            for request in parked:
                if request.deadline_us < self._now:
                    self._expire(request)
                else:
                    self._place(request)

    # -- reporting ---------------------------------------------------------
    def report(self) -> ServingReport:
        if self._metrics.enabled:
            self._metrics.absorb("serve.batcher", self.batcher.stats)
            for device, worker in sorted(self._workers.items()):
                self._metrics.absorb(
                    f"serve.worker:{device}",
                    {
                        "batches": worker.batches,
                        "requests": worker.calls,
                        "generations": worker.generation,
                    },
                )
        return ServingReport(
            slo_text=self.slo.table(),
            fingerprint=self.slo.fingerprint(),
            makespan_us=self._now,
            admitted=set(self._admitted),
            completed=dict(self._completed),
            expired=set(self._expired),
            rejected_after_admit=set(self._rejected_after_admit),
            crashes=tuple(self.crashes),
            wrong_results=self.wrong_results,
            duplicates_avoided=self.duplicates_avoided,
            batcher_stats=self.batcher.stats,
            worker_stats={
                d: {
                    "batches": w.batches,
                    "requests": w.calls,
                    "generations": w.generation,
                }
                for d, w in sorted(self._workers.items())
            },
        )
