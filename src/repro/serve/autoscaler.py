"""SLO-driven autoscaling of mOS partitions under the serving frontend.

The raw-speed engine (PR 6) made one simulated second cheap; this module
makes the *fleet* elastic: a controller watches a sliding window of
per-tenant latency, queue pressure and admission rejections, and decides
to boot parked mOS partitions or drain-and-retire live ones so capacity
tracks the diurnal/bursty offered load instead of idling at the static
fleet size.  Partition boot/retire stays a small, auditable management-
plane operation (the HyperEnclave/MicroTEE argument): the decisions are
emitted as ordinary virtual-time events on the serving event loop, so an
autoscaled run replays deterministically and its SLO and scaling
fingerprints are a pure function of (load profile, policy, seed).

Two window implementations back the controller:

* :class:`SlidingWindow` — the production path: per-signal deques pruned
  incrementally, O(1) amortized per observation, memory bounded by the
  window.
* :class:`FullHistoryWindow` — the brute-force reference: retains every
  observation and rescans the full history on each snapshot.

Both produce **bit-identical** snapshots (pruning keeps the same items in
the same order, so float sums associate identically); the equivalence
suite (``tests/test_autoscale.py``) drives the whole serving system under
both and asserts the scaling decision streams and SLO fingerprints match
byte-for-byte.

The policy itself is deliberately simple and fully deterministic:

* **target tracking** — desired capacity is ``headroom`` times the
  windowed arrival work-rate (arrivals/window x observed mean service
  time), in device-equivalents;
* **reactive bump** — any fleet-pressure signal in the window (queue-full
  rejections, parked placements, a p99 breach when ``p99_slo_us`` is
  set) forces at least one boot beyond current capacity;
* **conservative scale-down** — capacity must sit above the target for
  ``scale_down_ticks`` consecutive evaluations *and* past the cooldown
  before at most ``max_retires_per_tick`` partitions drain, so a burst
  trough never flaps the fleet.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from repro.serve.slo import nearest_rank

#: Scaling decision verbs (also the replayable schedule's event names).
SCALE_BOOT = "boot"
SCALE_RETIRE = "retire"
#: Lifecycle notifications recorded alongside decisions (not replayed).
SCALE_UP = "up"
SCALE_PARK = "park"

#: The decision verbs a fixed replay schedule may contain.
DECISION_ACTIONS = (SCALE_BOOT, SCALE_RETIRE)


class AutoscalerError(Exception):
    """Policy misuse (bad knobs, malformed schedule)."""


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Knobs of the SLO-driven controller (see ``docs/serving.md``)."""

    window_us: float = 200_000.0
    """Sliding observation window for every signal, simulated µs."""
    eval_interval_us: float = 25_000.0
    """Controller tick period; every decision lands on this grid."""
    headroom: float = 2.0
    """Desired capacity = headroom x windowed demand (device-equivalents)."""
    default_service_us: float = 25.0
    """Service-time estimate used before any completion is observed."""
    p99_slo_us: Optional[float] = None
    """Optional reactive trigger: window p99 above this forces a boot."""
    min_devices: int = 1
    """The fleet never drains below this many live+booting devices."""
    max_devices: Optional[int] = None
    """Optional cap on live+booting devices (None = every fleet device)."""
    boot_delay_us: float = 25_000.0
    """Virtual time between a boot decision and the partition being live
    (mOS load + sRPC runtime warm-up, the management-plane cost)."""
    scale_down_ticks: int = 4
    """Consecutive below-target evaluations required before a drain."""
    scale_down_cooldown_us: float = 100_000.0
    """Minimum spacing between drain decisions."""
    max_retires_per_tick: int = 1
    """Drains are gentle: at most this many partitions retire per tick."""

    def __post_init__(self) -> None:
        if self.window_us <= 0:
            raise AutoscalerError(f"window_us must be positive, got {self.window_us}")
        if self.eval_interval_us <= 0:
            raise AutoscalerError(
                f"eval_interval_us must be positive, got {self.eval_interval_us}"
            )
        if self.headroom < 1.0:
            raise AutoscalerError(f"headroom must be >= 1, got {self.headroom}")
        if self.default_service_us <= 0:
            raise AutoscalerError(
                f"default_service_us must be positive, got {self.default_service_us}"
            )
        if self.min_devices < 1:
            raise AutoscalerError(f"min_devices must be >= 1, got {self.min_devices}")
        if self.max_devices is not None and self.max_devices < self.min_devices:
            raise AutoscalerError(
                f"max_devices {self.max_devices} < min_devices {self.min_devices}"
            )
        if self.boot_delay_us < 0:
            raise AutoscalerError(
                f"boot_delay_us must be non-negative, got {self.boot_delay_us}"
            )
        if self.scale_down_ticks < 1:
            raise AutoscalerError(
                f"scale_down_ticks must be >= 1, got {self.scale_down_ticks}"
            )
        if self.max_retires_per_tick < 1:
            raise AutoscalerError(
                f"max_retires_per_tick must be >= 1, got {self.max_retires_per_tick}"
            )


@dataclass(frozen=True)
class WindowSnapshot:
    """The window aggregates one evaluation reads (pure data)."""

    arrivals: int
    rejections: int
    parked: int
    completions: int
    mean_service_us: Optional[float]
    p99_us: Optional[float]


class SlidingWindow:
    """Incrementally pruned window statistics (the production path).

    Each observation appends to one deque; pruning pops expired entries
    from the left, so the total work is O(1) amortized per observation
    and memory is bounded by the window's population.  Sums are computed
    over the surviving deque contents in arrival order — never maintained
    as running totals — so a snapshot is bit-identical to the brute-force
    reference's (running sums would accumulate float error the reference
    does not have).
    """

    def __init__(self, window_us: float) -> None:
        self.window_us = window_us
        self._arrivals: Deque[float] = deque()
        self._rejections: Deque[float] = deque()
        self._parked: Deque[float] = deque()
        self._completions: Deque[Tuple[float, float, float]] = deque()
        """(completion_us, latency_us, service_us)."""

    def observe_arrival(self, t_us: float) -> None:
        self._arrivals.append(t_us)

    def observe_rejection(self, t_us: float) -> None:
        self._rejections.append(t_us)

    def observe_parked(self, t_us: float) -> None:
        self._parked.append(t_us)

    def observe_completion(
        self, t_us: float, latency_us: float, service_us: float
    ) -> None:
        self._completions.append((t_us, latency_us, service_us))

    def snapshot(self, now_us: float) -> WindowSnapshot:
        cutoff = now_us - self.window_us
        for dq in (self._arrivals, self._rejections, self._parked):
            while dq and dq[0] <= cutoff:
                dq.popleft()
        comp = self._completions
        while comp and comp[0][0] <= cutoff:
            comp.popleft()
        return _snapshot_from(
            len(self._arrivals),
            len(self._rejections),
            len(self._parked),
            [(lat, svc) for _, lat, svc in comp],
        )


class FullHistoryWindow:
    """The brute-force reference: keep everything, rescan per snapshot.

    Same observation API and bit-identical snapshots; O(history) memory
    and O(history) work per evaluation — exactly what the sliding window
    exists to avoid, and exactly what makes this the trustworthy oracle.
    """

    def __init__(self, window_us: float) -> None:
        self.window_us = window_us
        self._arrivals: List[float] = []
        self._rejections: List[float] = []
        self._parked: List[float] = []
        self._completions: List[Tuple[float, float, float]] = []

    def observe_arrival(self, t_us: float) -> None:
        self._arrivals.append(t_us)

    def observe_rejection(self, t_us: float) -> None:
        self._rejections.append(t_us)

    def observe_parked(self, t_us: float) -> None:
        self._parked.append(t_us)

    def observe_completion(
        self, t_us: float, latency_us: float, service_us: float
    ) -> None:
        self._completions.append((t_us, latency_us, service_us))

    def snapshot(self, now_us: float) -> WindowSnapshot:
        cutoff = now_us - self.window_us
        return _snapshot_from(
            sum(1 for t in self._arrivals if t > cutoff),
            sum(1 for t in self._rejections if t > cutoff),
            sum(1 for t in self._parked if t > cutoff),
            [(lat, svc) for t, lat, svc in self._completions if t > cutoff],
        )


def _snapshot_from(
    arrivals: int,
    rejections: int,
    parked: int,
    completions: List[Tuple[float, float, float]],
) -> WindowSnapshot:
    """Aggregate (latency, service) pairs into one snapshot record."""
    if completions:
        mean_service: Optional[float] = (
            sum(svc for _, svc in completions) / len(completions)
        )
        p99: Optional[float] = nearest_rank(
            sorted(lat for lat, _ in completions), 99
        )
    else:
        mean_service = None
        p99 = None
    return WindowSnapshot(
        arrivals=arrivals,
        rejections=rejections,
        parked=parked,
        completions=len(completions),
        mean_service_us=mean_service,
        p99_us=p99,
    )


class Autoscaler:
    """The controller: window statistics in, scaling decisions out.

    Pure with respect to the fleet — :meth:`evaluate` never mutates the
    serving system; it returns ``(action, device)`` decisions that the
    frontend applies (and records for replay).  ``brute_force=True``
    swaps the incremental window for the full-history reference; the two
    must render identical decision streams (the equivalence suite's
    claim).
    """

    def __init__(self, policy: AutoscalerPolicy, *, brute_force: bool = False) -> None:
        self.policy = policy
        self.brute_force = brute_force
        window_cls = FullHistoryWindow if brute_force else SlidingWindow
        self.window = window_cls(policy.window_us)
        self.ticks = 0
        self.boots = 0
        self.retires = 0
        self._low_streak = 0
        self._last_down_us = -math.inf

    # -- observation hooks (called by the frontend) ------------------------
    def observe_arrival(self, t_us: float) -> None:
        self.window.observe_arrival(t_us)

    def observe_rejection(self, t_us: float) -> None:
        self.window.observe_rejection(t_us)

    def observe_parked(self, t_us: float) -> None:
        self.window.observe_parked(t_us)

    def observe_completion(
        self, t_us: float, latency_us: float, service_us: float
    ) -> None:
        self.window.observe_completion(t_us, latency_us, service_us)

    # -- the decision function ---------------------------------------------
    def desired_capacity(self, snap: WindowSnapshot, capacity: int) -> int:
        """Target live+booting devices for one window snapshot."""
        policy = self.policy
        mean_service = (
            snap.mean_service_us
            if snap.mean_service_us is not None
            else policy.default_service_us
        )
        # Offered work rate in device-equivalents: how many partitions the
        # window's arrivals keep busy if served back-to-back.
        demand = snap.arrivals * mean_service / policy.window_us
        desired = int(math.ceil(policy.headroom * demand))
        if snap.rejections or snap.parked:
            desired = max(desired, capacity + 1)
        if (
            policy.p99_slo_us is not None
            and snap.p99_us is not None
            and snap.p99_us > policy.p99_slo_us
        ):
            desired = max(desired, capacity + 1)
        return max(desired, policy.min_devices)

    def evaluate(
        self,
        now_us: float,
        *,
        live: Sequence[str],
        booting: Sequence[str],
        parked: Sequence[str],
    ) -> List[Tuple[str, str]]:
        """One controller tick; returns ``(action, device)`` decisions.

        ``live``/``booting``/``parked`` are the fleet's current device
        names; callers pass them sorted so candidate selection is
        deterministic (boots take the lowest-named parked device, drains
        the highest-named — LIFO, so the core fleet is stable).
        """
        policy = self.policy
        self.ticks += 1
        snap = self.window.snapshot(now_us)
        capacity = len(live) + len(booting)
        desired = self.desired_capacity(snap, capacity)
        ceiling = capacity + len(parked)
        if policy.max_devices is not None:
            ceiling = min(ceiling, policy.max_devices)
        desired = min(desired, ceiling)
        decisions: List[Tuple[str, str]] = []
        if desired > capacity:
            self._low_streak = 0
            for device in sorted(parked)[: desired - capacity]:
                decisions.append((SCALE_BOOT, device))
                self.boots += 1
        elif desired < capacity:
            self._low_streak += 1
            if (
                self._low_streak >= policy.scale_down_ticks
                and now_us - self._last_down_us >= policy.scale_down_cooldown_us
            ):
                surplus = min(capacity - desired, policy.max_retires_per_tick)
                victims = sorted(booting, reverse=True) + sorted(live, reverse=True)
                for device in victims[:surplus]:
                    decisions.append((SCALE_RETIRE, device))
                    self.retires += 1
                self._last_down_us = now_us
                self._low_streak = 0
        else:
            self._low_streak = 0
        return decisions

    @property
    def stats(self) -> dict:
        return {
            "ticks": self.ticks,
            "boots": self.boots,
            "retires": self.retires,
            "brute_force": int(self.brute_force),
        }
