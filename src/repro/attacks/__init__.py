"""The adversary harness.

Every in-scope attack from the paper's threat model (section III-B) and the
failover analysis (section IV-D) exists here as an executable scenario
against a live :class:`~repro.systems.cronus.CronusSystem`.  Each scenario
*attempts* the attack through the same code paths a malicious normal OS or
mEnclave would use and reports whether the defense held; the test suite and
the Table-I benchmark assert on these outcomes.
"""

from repro.attacks.adversaries import (
    DropAdversary,
    ReorderAdversary,
    ReplayAdversary,
    TamperAdversary,
)
from repro.attacks.scenarios import (
    AttackOutcome,
    attempt_bad_device_tree,
    attempt_crashed_info_leak,
    attempt_deadlock_after_crash,
    attempt_drop,
    attempt_fabricated_accelerator,
    attempt_mos_substitution,
    attempt_non_owner_ecall,
    attempt_normal_world_secure_read,
    attempt_reorder,
    attempt_replay,
    attempt_secure_device_access,
    attempt_srpc_eavesdrop,
    attempt_tamper,
    attempt_toctou_after_crash,
    attempt_tzasc_reconfig,
    attempt_wrong_partition_dispatch,
    run_all_attacks,
)

__all__ = [
    "DropAdversary",
    "ReorderAdversary",
    "ReplayAdversary",
    "TamperAdversary",
    "AttackOutcome",
    "attempt_bad_device_tree",
    "attempt_crashed_info_leak",
    "attempt_deadlock_after_crash",
    "attempt_drop",
    "attempt_fabricated_accelerator",
    "attempt_mos_substitution",
    "attempt_non_owner_ecall",
    "attempt_normal_world_secure_read",
    "attempt_reorder",
    "attempt_replay",
    "attempt_secure_device_access",
    "attempt_srpc_eavesdrop",
    "attempt_tamper",
    "attempt_toctou_after_crash",
    "attempt_tzasc_reconfig",
    "attempt_wrong_partition_dispatch",
    "run_all_attacks",
]
