"""Executable attack scenarios against a live CRONUS system.

Each function attempts one in-scope attack and returns an
:class:`AttackOutcome` saying whether the defense held (``blocked=True``)
and how.  Scenarios never reach into defense internals to "help" — they
drive the same public paths an attacker controls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.attacks.adversaries import (
    DropAdversary,
    ReorderAdversary,
    ReplayAdversary,
    TamperAdversary,
)
from repro.enclave.images import CpuImage
from repro.enclave.manifest import Manifest, MECallSpec
from repro.enclave.menclave import OwnershipError
from repro.hw.devices import MMIORegion
from repro.hw.devicetree import DeviceTree, DeviceTreeNode
from repro.hw.memory import PAGE_SIZE, AccessFault
from repro.hw.platform import Platform
from repro.mos.hal import GpuHal, HalError
from repro.mos.manager import EnclaveManagerError
from repro.rpc.baselines import RpcIntegrityError, SyncRpcChannel, UntrustedTransport
from repro.rpc.channel import ChannelError, EnclaveEndpoint, SRPCChannel, SRPCPeerFailure
from repro.secure.monitor import AttestationError, SecureMonitor
from repro.secure.partition import PeerFailedSignal
from repro.systems.cronus import CronusSystem
from repro.systems.testbed import TestbedConfig


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one attempted attack."""

    name: str
    blocked: bool
    detail: str


def _cpu_image() -> CpuImage:
    return CpuImage(
        name="victim",
        functions={
            "store": lambda state, value: state.__setitem__("value", value),
            "load": lambda state: state.get("value"),
        },
    )


def _cpu_manifest(image: CpuImage) -> Manifest:
    return Manifest(
        device_type="cpu",
        images={"victim.so": image.digest()},
        mecalls=(MECallSpec("store"), MECallSpec("load")),
    )


def _fresh_system(isolation: str = "trustzone") -> CronusSystem:
    return CronusSystem(TestbedConfig(num_gpus=1, with_npu=True, isolation=isolation))


# ---------------------------------------------------------- memory / devices


def attempt_normal_world_secure_read(system: CronusSystem) -> AttackOutcome:
    """The untrusted OS reads secure DRAM directly."""
    addr = system.platform.secure_base + 4 * PAGE_SIZE
    try:
        system.platform.memory.read(addr, 64, world="normal")
    except AccessFault as exc:
        return AttackOutcome("normal-world-secure-read", True, str(exc))
    return AttackOutcome("normal-world-secure-read", False, "secure DRAM readable!")


def attempt_tzasc_reconfig(system: CronusSystem) -> AttackOutcome:
    """The untrusted OS shrinks the secure region after boot lockdown."""
    try:
        system.platform.tzasc.configure_secure_region(system.platform.secure_base, PAGE_SIZE)
    except AccessFault as exc:
        return AttackOutcome("tzasc-reconfig", True, str(exc))
    return AttackOutcome("tzasc-reconfig", False, "TZASC reconfigured after lockdown!")


def attempt_secure_device_access(system: CronusSystem) -> AttackOutcome:
    """The untrusted OS touches a secure-world accelerator's MMIO."""
    try:
        system.platform.tzpc.check("gpu0", "normal")
    except AccessFault as exc:
        return AttackOutcome("secure-device-access", True, str(exc))
    return AttackOutcome("secure-device-access", False, "secure device touchable!")


def attempt_bad_device_tree() -> AttackOutcome:
    """The untrusted OS supplies a DT with overlapping IRQs (spoofing)."""
    platform = Platform()
    bad_dt = DeviceTree(
        [
            DeviceTreeNode("gpu0", "gpu", 0x4000_0000, 0x1000, irq=41),
            DeviceTreeNode("evil", "gpu", 0x5000_0000, 0x1000, irq=41),
        ]
    )
    monitor = SecureMonitor(platform)
    try:
        monitor.boot(bad_dt)
    except AttestationError as exc:
        return AttackOutcome("bad-device-tree", True, str(exc))
    return AttackOutcome("bad-device-tree", False, "malicious DT accepted at boot!")


def attempt_fabricated_accelerator(system: CronusSystem) -> AttackOutcome:
    """A fabricated GPU (no vendor endorsement) is configured into the
    secure world via DT + reboot; the HAL authenticity check during
    attestation must reject it."""
    from repro.accel.gpu import GpuDevice
    from repro.mos.shim import ShimKernel
    from repro.secure.spm import SPM

    platform = Platform()
    nvidia = platform.register_vendor("nvidia")
    fake = GpuDevice(
        "fake-gpu",
        platform.clock,
        platform.costs,
        mmio=MMIORegion(0x7000_0000, 0x1000),
        irq=99,
        vendor=None,  # fabricated: no endorsement chain
    )
    platform.attach_device(fake, world="secure")  # pre-boot DT configuration
    monitor = SecureMonitor(platform)
    monitor.boot(platform.build_device_tree())
    spm = SPM(platform, monitor)
    partition = spm.create_partition("part-fake", fake)
    hal = GpuHal(fake, ShimKernel(partition, spm, platform.tzpc))
    try:
        hal.attest_device(nvidia.public)
    except HalError as exc:
        return AttackOutcome("fabricated-accelerator", True, str(exc))
    return AttackOutcome("fabricated-accelerator", False, "fabricated device attested!")


# --------------------------------------------------------------- dispatch


def attempt_wrong_partition_dispatch(system: CronusSystem) -> AttackOutcome:
    """A malicious dispatcher routes a GPU mEnclave request to the NPU
    partition; the Enclave Manager's manifest check must refuse."""
    app = system.application("attacker")
    from repro.enclave.images import CudaImage
    from repro.enclave.models import CUDA_MECALLS

    image = CudaImage(name="mal", kernels=("matmul",))
    manifest = Manifest(
        device_type="gpu", images={"mal.cubin": image.digest()}, mecalls=CUDA_MECALLS
    )
    try:
        app.create_enclave(manifest, image, "mal.cubin", mos=system.moses["npu0"])
    except EnclaveManagerError as exc:
        return AttackOutcome("wrong-partition-dispatch", True, str(exc))
    return AttackOutcome("wrong-partition-dispatch", False, "mis-dispatch accepted!")


def attempt_non_owner_ecall(system: CronusSystem) -> AttackOutcome:
    """A non-owner invokes an mECall with a forged MAC."""
    app = system.application("victim-app")
    image = _cpu_image()
    handle = app.create_enclave(_cpu_manifest(image), image, "victim.so")
    handle.ecall("store", b"secret-value")
    forged_secret = b"\x00" * 32
    tag = handle.enclave.owner_tag(forged_secret, "load", 99)
    try:
        handle.enclave.mecall_untrusted("load", (), {}, counter=99, tag=tag)
    except OwnershipError as exc:
        return AttackOutcome("non-owner-ecall", True, str(exc))
    return AttackOutcome("non-owner-ecall", False, "non-owner mECall executed!")


# ----------------------------------------------------------------- RPC layer


def _sync_channel(system: CronusSystem, adversary) -> SyncRpcChannel:
    app = system.application("rpc-victim")
    image = _cpu_image()
    handle = app.create_enclave(_cpu_manifest(image), image, "victim.so")
    transport = UntrustedTransport()
    transport.adversary = adversary
    return SyncRpcChannel(
        EnclaveEndpoint(enclave=None, mos=handle.mos),
        handle.endpoint(),
        handle.secret,
        transport,
    )


def _run_rpc_attack(name: str, system: CronusSystem, adversary) -> AttackOutcome:
    channel = _sync_channel(system, adversary)
    try:
        channel.call("store", b"x")
        channel.call("store", b"y")
    except RpcIntegrityError as exc:
        return AttackOutcome(name, True, str(exc))
    return AttackOutcome(name, False, f"{name} went undetected!")


def attempt_replay(system: CronusSystem) -> AttackOutcome:
    """Replay an RPC over untrusted memory: monotonic counters reject it."""
    return _run_rpc_attack("rpc-replay", system, ReplayAdversary())


def attempt_reorder(system: CronusSystem) -> AttackOutcome:
    """Reorder RPCs: the stale counter of the late message is rejected."""
    return _run_rpc_attack("rpc-reorder", system, ReorderAdversary())


def attempt_drop(system: CronusSystem) -> AttackOutcome:
    """Drop an RPC: the missing acknowledgement surfaces the attack."""
    return _run_rpc_attack("rpc-drop", system, DropAdversary(drop_every=1))


def attempt_tamper(system: CronusSystem) -> AttackOutcome:
    """Corrupt RPC parameters in untrusted memory: the MAC fails."""
    return _run_rpc_attack("rpc-tamper", system, TamperAdversary())


def attempt_srpc_eavesdrop(system: CronusSystem) -> AttackOutcome:
    """The untrusted OS reads an sRPC ring buffer: it lives in trusted TEE
    memory, so even *seeing* RPC timing/content is impossible."""
    app = system.application("stream-app")
    image = _cpu_image()
    caller = app.create_enclave(_cpu_manifest(image), image, "victim.so")
    callee = app.create_enclave(_cpu_manifest(image), image, "victim.so")
    channel = app.open_channel(caller, callee)
    ring_page = channel._smem_pages()[0]
    try:
        system.platform.memory.read(ring_page * PAGE_SIZE, 64, world="normal")
    except AccessFault as exc:
        channel.close()
        return AttackOutcome("srpc-eavesdrop", True, str(exc))
    channel.close()
    return AttackOutcome("srpc-eavesdrop", False, "ring buffer readable from normal world!")


def attempt_mos_substitution(system: CronusSystem) -> AttackOutcome:
    """After a crash, a malicious mOS stands up an impostor mEnclave; the
    creator's channel setup must fail dCheck (the impostor lacks
    secret_dhke)."""
    app = system.application("subst-app")
    image = _cpu_image()
    caller = app.create_enclave(_cpu_manifest(image), image, "victim.so")
    victim = app.create_enclave(_cpu_manifest(image), image, "victim.so")
    impostor_app = system.application("evil-app")
    impostor = impostor_app.create_enclave(_cpu_manifest(image), image, "victim.so")
    # The attacker routes the victim's channel-open to the impostor: same
    # measurement, same mOS — but the victim's secret does not match.
    try:
        SRPCChannel(caller.endpoint(), impostor.endpoint(), victim.secret, system.spm)
    except ChannelError as exc:
        return AttackOutcome("mos-substitution", True, str(exc))
    return AttackOutcome("mos-substitution", False, "impostor passed dCheck!")


# ------------------------------------------------------- failure-time attacks


def attempt_toctou_after_crash(system: CronusSystem) -> AttackOutcome:
    """A1: after the peer partition fails, the victim keeps streaming; the
    proceed-trap protocol must fault the access instead of leaking."""
    app = system.application("toctou-app")
    image = _cpu_image()
    caller = app.create_enclave(_cpu_manifest(image), image, "victim.so")
    callee = app.create_enclave(_cpu_manifest(image), image, "victim.so")
    channel = app.open_channel(caller, callee)
    channel.call("store", b"pre-crash")
    # The callee partition fails; in CRONUS both CPU enclaves share the CPU
    # partition, so fail a GPU partition variant instead: use distinct
    # partitions by pairing CPU caller with a GPU callee.
    from repro.enclave.images import CudaImage
    from repro.enclave.models import CUDA_MECALLS

    cuda_image = CudaImage(name="toctou", kernels=("vecadd",))
    gpu_manifest = Manifest(
        device_type="gpu", images={"toctou.cubin": cuda_image.digest()}, mecalls=CUDA_MECALLS
    )
    gpu_handle = app.create_enclave(gpu_manifest, cuda_image, "toctou.cubin")
    gpu_channel = app.open_channel(caller, gpu_handle)
    gpu_channel.call("cudaMalloc", (16,))
    system.fail_partition("gpu0")
    try:
        gpu_channel.call("cudaMalloc", (16,))
    except SRPCPeerFailure as exc:
        return AttackOutcome("toctou-after-crash", True, str(exc))
    return AttackOutcome("toctou-after-crash", False, "data sent to substituted partition!")


def attempt_deadlock_after_crash(system: CronusSystem) -> AttackOutcome:
    """A2: the peer dies holding a shared-memory spinlock; the survivor must
    be signalled, not deadlocked."""
    cpu_mos = system.moses["cpu0"]
    gpu_mos = system.moses["gpu0"]
    pages = cpu_mos.shim.alloc_pages(1)
    system.spm.share_pages(cpu_mos.partition, gpu_mos.partition, pages)
    peer_lock = gpu_mos.shim.spinlock_at(pages[0])
    peer_lock.acquire()  # the GPU-side enclave holds the lock...
    system.fail_partition("gpu0")  # ...and its partition dies
    survivor_lock = cpu_mos.shim.spinlock_at(pages[0])
    try:
        survivor_lock.acquire(max_spins=10_000)
    except PeerFailedSignal as exc:
        return AttackOutcome("deadlock-after-crash", True, f"signalled: {exc}")
    except Exception as exc:  # spin exhaustion would mean a real hang
        return AttackOutcome("deadlock-after-crash", False, f"hung: {exc}")
    return AttackOutcome("deadlock-after-crash", False, "lock acquired from dead holder?!")


def attempt_crashed_info_leak(system: CronusSystem) -> AttackOutcome:
    """A3: after recovery, the restarted partition scavenges device memory
    and old shared memory for the crashed tenant's secrets."""
    app = system.application("leak-app")
    from repro.enclave.images import CudaImage
    from repro.enclave.models import CUDA_MECALLS

    image = _cpu_image()
    caller = app.create_enclave(_cpu_manifest(image), image, "victim.so")
    cuda_image = CudaImage(name="leak", kernels=("vecadd",))
    gpu_manifest = Manifest(
        device_type="gpu", images={"leak.cubin": cuda_image.digest()}, mecalls=CUDA_MECALLS
    )
    gpu_handle = app.create_enclave(gpu_manifest, cuda_image, "leak.cubin")
    channel = app.open_channel(caller, gpu_handle)
    secret_data = np.full(256, 0x41, dtype=np.float32)
    buf = channel.call("cudaMalloc", (256,))
    channel.call("cudaMemcpyH2D", buf, secret_data)
    channel.call("cudaDeviceSynchronize")
    ring_pages = channel._grant.pages
    gpu_device = system.platform.device("gpu0")
    system.fail_partition("gpu0")
    # The malicious restarted partition scavenges:
    leaked_pages = [
        p for p in ring_pages if not system.platform.memory.page_is_zero(p)
    ]
    gpu_bytes_left = gpu_device.bytes_in_use
    if leaked_pages or gpu_bytes_left:
        return AttackOutcome(
            "crashed-info-leak",
            False,
            f"leak: pages={leaked_pages} gpu_bytes={gpu_bytes_left}",
        )
    return AttackOutcome("crashed-info-leak", True, "device + smem scrubbed before reload")


_SCENARIOS: Dict[str, Callable] = {
    "normal-world-secure-read": attempt_normal_world_secure_read,
    "tzasc-reconfig": attempt_tzasc_reconfig,
    "secure-device-access": attempt_secure_device_access,
    "fabricated-accelerator": attempt_fabricated_accelerator,
    "wrong-partition-dispatch": attempt_wrong_partition_dispatch,
    "non-owner-ecall": attempt_non_owner_ecall,
    "rpc-replay": attempt_replay,
    "rpc-reorder": attempt_reorder,
    "rpc-drop": attempt_drop,
    "rpc-tamper": attempt_tamper,
    "srpc-eavesdrop": attempt_srpc_eavesdrop,
    "mos-substitution": attempt_mos_substitution,
    "toctou-after-crash": attempt_toctou_after_crash,
    "deadlock-after-crash": attempt_deadlock_after_crash,
    "crashed-info-leak": attempt_crashed_info_leak,
}


def run_all_attacks(isolation: str = "trustzone") -> List[AttackOutcome]:
    """Run every scenario, each on a fresh system (plus the DT one, which
    builds its own platform).  ``isolation`` selects the hardware backend
    ("trustzone" or "riscv-pmp") — the defenses must hold on both."""
    outcomes = [attempt_bad_device_tree()]
    for scenario in _SCENARIOS.values():
        outcomes.append(scenario(_fresh_system(isolation)))
    return outcomes
