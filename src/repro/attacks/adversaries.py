"""RPC-level adversaries for the untrusted transport.

The normal OS controls untrusted memory, so it "can reorder and replay RPCs
between mEnclaves ... and invoke an mECall with arbitrary parameters"
(paper section III-B).  These adversaries plug into
:class:`~repro.rpc.baselines.UntrustedTransport` and mutate the message
flow; integrity must come from the protocol (MACs + counters + acks), never
from the transport.
"""

from __future__ import annotations

from typing import List


class DropAdversary:
    """Silently drops every ``drop_every``-th message."""

    def __init__(self, drop_every: int = 1) -> None:
        self.drop_every = drop_every
        self._seen = 0
        self.dropped = 0

    def __call__(self, message: bytes) -> List[bytes]:
        self._seen += 1
        if self._seen % self.drop_every == 0:
            self.dropped += 1
            return []
        return [message]


class ReplayAdversary:
    """Delivers every message twice (classic replay)."""

    def __init__(self) -> None:
        self.replayed = 0

    def __call__(self, message: bytes) -> List[bytes]:
        self.replayed += 1
        return [message, message]


class ReorderAdversary:
    """Holds each message back and delivers it *after* the next one."""

    def __init__(self) -> None:
        self._held: List[bytes] = []
        self.reordered = 0

    def __call__(self, message: bytes) -> List[bytes]:
        if not self._held:
            self._held.append(message)
            return []  # withhold; will be delivered out of order later
        previous = self._held.pop()
        self.reordered += 1
        return [message, previous]


class TamperAdversary:
    """Flips bits in the payload (parameter corruption)."""

    def __init__(self, flip_at: int = 8) -> None:
        self.flip_at = flip_at
        self.tampered = 0

    def __call__(self, message: bytes) -> List[bytes]:
        self.tampered += 1
        mutated = bytearray(message)
        mutated[self.flip_at % len(mutated)] ^= 0xFF
        return [bytes(mutated)]
