"""System interface and the three baseline systems.

Every system provides ``runtime(...)`` returning an object with the common
heterogeneous interface (CUDA calls, VTA calls, ``cpu_compute``).  Workloads
are written once against that interface; benchmarks compare the simulated
clock across systems, which is exactly how the paper's figures compare
CRONUS against Linux (native), monolithic TrustZone and HIX-TrustZone.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.accel.gpu import GpuDevice
from repro.accel.npu import NpuDevice
from repro.crypto.dh import DiffieHellman
from repro.crypto.hashing import measure_many
from repro.enclave.images import CudaImage
from repro.enclave.manifest import Manifest
from repro.enclave.menclave import MEnclave, make_eid
from repro.enclave.models import CUDA_MECALLS, CudaExecutionModel
from repro.hw.platform import Platform
from repro.rpc.baselines import EncryptedRpcChannel, UntrustedTransport
from repro.rpc.channel import EnclaveEndpoint
from repro.systems.testbed import TestbedConfig, make_platform


class SystemError(Exception):
    """System-level misuse (unsupported device, sharing violation)."""


class DirectHal:
    """A HAL stand-in for baselines that run without S-EL2 partitions:
    exposes the devices directly, as a monolithic secure OS would."""

    def __init__(self, platform: Platform) -> None:
        self._platform = platform

    @property
    def cpu_device(self):
        return self._platform.device("cpu0")

    @property
    def npu_device(self) -> NpuDevice:
        return self._platform.device("npu0")

    def gpu(self, name: str) -> GpuDevice:
        return self._platform.device(name)

    def create_gpu_context(self, owner: str, *, gpu_name: str = "gpu0"):
        return self.gpu(gpu_name).create_context(owner)


class DirectRuntime:
    """Direct device access with a fixed per-call overhead.

    ``per_call_us = 0`` models native Linux; a small constant models the
    monolithic TrustZone OS, whose internal RPC runs over trusted shared
    memory without cross-partition switches (paper section II-C).
    """

    def __init__(
        self,
        platform: Platform,
        *,
        per_call_us: float = 0.0,
        gpu_name: str = "gpu0",
        owner: str = "direct",
        npu_programs: Optional[Dict[str, object]] = None,
    ) -> None:
        self._platform = platform
        self._per_call_us = per_call_us
        self._hal = DirectHal(platform)
        self._gpu_ctx = None
        self._gpu_name = gpu_name
        self._owner = owner
        self._npu_programs = dict(npu_programs or {})

    def _charge(self) -> None:
        if self._per_call_us:
            self._platform.clock.advance(self._per_call_us)

    def _gpu(self):
        if self._gpu_ctx is None:
            self._gpu_ctx = self._hal.create_gpu_context(self._owner, gpu_name=self._gpu_name)
        return self._gpu_ctx

    # -- CUDA -----------------------------------------------------------
    def cudaMalloc(self, shape, dtype="float32") -> int:
        self._charge()
        return self._gpu().alloc(tuple(shape), dtype=np.dtype(dtype))

    def cudaFree(self, handle: int) -> None:
        self._charge()
        self._gpu().free(handle)

    def cudaMemcpyH2D(self, handle: int, host) -> None:
        self._charge()
        self._gpu().memcpy_h2d(handle, np.asarray(host))

    def cudaMemcpyD2H(self, handle: int):
        self._charge()
        return self._gpu().memcpy_d2h(handle)

    def cudaLaunchKernel(self, kernel: str, handles, **params) -> None:
        self._charge()
        self._gpu().launch(kernel, list(handles), **params)

    def cudaDeviceSynchronize(self) -> None:
        self._charge()
        self._gpu().synchronize()

    # -- VTA ----------------------------------------------------------------
    def vtaWriteTensor(self, name: str, array) -> None:
        self._charge()
        self._hal.npu_device.write_tensor(name, np.asarray(array))

    def vtaReadTensor(self, name: str):
        self._charge()
        return self._hal.npu_device.read_tensor(name)

    def vtaRun(self, program_name: str) -> None:
        self._charge()
        try:
            program = self._npu_programs[program_name]
        except KeyError:
            raise SystemError(f"no NPU program named {program_name!r} loaded") from None
        self._hal.npu_device.run(program)

    def vtaSynchronize(self) -> None:
        self._charge()
        self._hal.npu_device.synchronize()

    # -- CPU ------------------------------------------------------------------
    def cpu_compute(self, flops: float) -> None:
        self._platform.clock.advance(flops / self._platform.costs.cpu_flops_per_us)

    def debug_gpu_buffer(self, handle: int):
        """Simulator-only backdoor (see PartitionedRuntime.debug_gpu_buffer)."""
        return self._gpu().buffer(handle)

    def close(self) -> None:
        if self._gpu_ctx is not None:
            self._gpu_ctx.destroy()
            self._gpu_ctx = None


class System:
    """Base class: owns the platform and measures simulated time."""

    name = "abstract"
    supports_npu = True
    supports_spatial_sharing = True
    fault_isolated = False
    security_isolated = False

    def __init__(
        self,
        testbed: Optional[TestbedConfig] = None,
        *,
        costs=None,
        trace: bool = False,
        obs: bool = False,
    ) -> None:
        self.platform = make_platform(testbed, costs=costs)
        self.platform.tracer.enabled = trace
        # ``obs=True`` turns on causal spans and the typed metrics registry
        # (repro.obs).  Neither advances the simulated clock.
        self.platform.obs.enabled = obs
        self.platform.metrics.enabled = obs

    @property
    def clock(self):
        return self.platform.clock

    def runtime(self, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def release(self, rt) -> None:
        rt.close()

    def inject_device_failure(self, device_name: str) -> float:
        """Crash the stack managing ``device_name``; returns downtime (us).

        Baselines have no isolated recovery path: clearing accelerator
        state requires a cold machine reboot (table I footnotes).
        """
        start = self.clock.now
        for device in self.platform.devices():
            device.clear_state()
        self.clock.advance(self.platform.costs.machine_reboot_us)
        return self.clock.now - start

    def stats(self) -> dict:
        """Introspection counters for operators and tests."""
        out = {"system": self.name, "sim_time_us": self.clock.now, "devices": {}}
        for device in self.platform.devices():
            entry = {"type": device.device_type}
            if hasattr(device, "kernels_launched"):
                entry["kernels_launched"] = device.kernels_launched
                entry["bytes_in_use"] = device.bytes_in_use
                entry["active_contexts"] = device.active_contexts()
            if hasattr(device, "programs_run"):
                entry["programs_run"] = device.programs_run
            if hasattr(device, "calls_executed"):
                entry["calls_executed"] = device.calls_executed
            out["devices"][device.name] = entry
        return out


class BaselineSystem(System):
    """Shared plumbing for the non-CRONUS systems."""


class NativeLinux(BaselineSystem):
    """Unprotected execution: the normalization baseline of figure 7."""

    name = "linux"
    fault_isolated = False
    security_isolated = False

    def runtime(self, *, gpu_name: str = "gpu0", owner: str = "app",
                npu_programs=None, **_ignored):
        return DirectRuntime(
            self.platform, per_call_us=0.0, gpu_name=gpu_name, owner=owner,
            npu_programs=npu_programs,
        )


class MonolithicTrustZone(BaselineSystem):
    """All device drivers inside one monolithic secure OS ("TrustZone").

    Fast (internal calls over trusted shared memory) and spatially shared,
    but a single fault anywhere takes down the whole secure world, and
    every tenant must trust every driver (violating R3).
    """

    name = "trustzone"
    fault_isolated = False
    security_isolated = False

    def runtime(self, *, gpu_name: str = "gpu0", owner: str = "app",
                npu_programs=None, **_ignored):
        costs = self.platform.costs
        # Entering the secure world once per session.
        self.clock.advance(2 * costs.world_switch_us)
        return DirectRuntime(
            self.platform,
            per_call_us=costs.enclave_entry_us,
            gpu_name=gpu_name,
            owner=owner,
            npu_programs=npu_programs,
        )


class HixRuntime:
    """HIX-TrustZone: CUDA calls via encrypted lock-step RPC into the
    dedicated GPU enclave, plus one extra RPC per hardware control message
    (the behaviour section VI-B attributes HIX's slowdown to)."""

    _CONTROL_RPCS = {
        "cudaLaunchKernel": 2,
        "cudaMemcpyH2D": 2,
        "cudaMemcpyD2H": 2,
        "cudaMalloc": 1,
        "cudaFree": 1,
        "cudaDeviceSynchronize": 1,
    }
    _CONTROL_MSG_BYTES = 64

    def __init__(self, system: "HixTrustZone", channel: EncryptedRpcChannel) -> None:
        self._system = system
        self._channel = channel
        self._platform = system.platform

    def _call(self, fn: str, *args, **kwargs):
        costs = self._platform.costs
        for _ in range(self._CONTROL_RPCS.get(fn, 1)):
            self._platform.clock.advance(
                costs.encrypted_rpc_overhead_us(self._CONTROL_MSG_BYTES)
            )
        return self._channel.call(fn, *args, **kwargs)

    def cudaMalloc(self, shape, dtype="float32") -> int:
        return self._call("cudaMalloc", tuple(shape), dtype=dtype)

    def cudaFree(self, handle: int) -> None:
        self._call("cudaFree", handle)

    def cudaMemcpyH2D(self, handle: int, host) -> None:
        self._call("cudaMemcpyH2D", handle, np.asarray(host))

    def cudaMemcpyD2H(self, handle: int):
        return self._call("cudaMemcpyD2H", handle)

    def cudaLaunchKernel(self, kernel: str, handles, **params) -> None:
        self._call("cudaLaunchKernel", kernel, list(handles), **params)

    def cudaDeviceSynchronize(self) -> None:
        self._call("cudaDeviceSynchronize")

    def cpu_compute(self, flops: float) -> None:
        self._platform.clock.advance(flops / self._platform.costs.cpu_flops_per_us)

    def close(self) -> None:
        self._channel.close()
        self._channel.callee.enclave.destroy()
        self._system._release_gpu()


class _BaselineHost:
    """Minimal mOS stand-in for baseline EnclaveEndpoints."""

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self.partition = None


class HixTrustZone(BaselineSystem):
    """HIX [54] emulated on TrustZone (paper section VI-A): the GPU driver
    runs in a GPU enclave with *dedicated* device access; application
    enclaves reach it only through encrypted RPC over untrusted memory."""

    name = "hix-trustzone"
    supports_npu = False  # "HIX supports only GPU"
    supports_spatial_sharing = False  # dedicated access, temporal sharing
    fault_isolated = False
    security_isolated = False

    def __init__(
        self, testbed=None, *, costs=None, trace: bool = False, obs: bool = False
    ) -> None:
        super().__init__(testbed, costs=costs, trace=trace, obs=obs)
        self._gpu_busy = False
        self._had_tenant = False
        self.transport = UntrustedTransport()
        self._next_local = 1

    def runtime(self, *, cuda_kernels: Tuple[str, ...] = (), gpu_name: str = "gpu0", **_ignored):
        if self._gpu_busy:
            raise SystemError(
                "HIX grants the GPU enclave dedicated access: "
                "another tenant must wait (temporal sharing only)"
            )
        if self._had_tenant:
            # Switching tenants on a dedicated-access design cold-reboots
            # the accelerator to clear its state (table I remark 1).
            self.platform.device(gpu_name).clear_state()
            self.clock.advance(self.platform.costs.accelerator_reset_us)
        self._gpu_busy = True
        self._had_tenant = True
        image = CudaImage(name=f"hix-{self._next_local}", kernels=tuple(cuda_kernels))
        manifest = Manifest(
            device_type="gpu",
            images={f"{image.name}.cubin": image.digest()},
            mecalls=CUDA_MECALLS,
        )
        model = CudaExecutionModel()

        class _Hal:
            def __init__(self, hal: DirectHal, gpu_name: str) -> None:
                self._hal, self._gpu_name = hal, gpu_name

            def create_gpu_context(self, owner: str, quota_bytes=None):
                return self._hal.create_gpu_context(owner, gpu_name=self._gpu_name)

        state = model.me_create(image, _Hal(DirectHal(self.platform), gpu_name))
        creator = DiffieHellman(f"hix-app-{self._next_local}".encode())
        enclave = MEnclave(
            eid=make_eid(1, self._next_local),
            manifest=manifest,
            model=model,
            state=state,
            measurement=measure_many([manifest.serialize(), image.blob()]),
            creator_dh_public=creator.public,
            dh_seed=f"hix-gpu-{self._next_local}".encode(),
        )
        self._next_local += 1
        secret = creator.shared_secret(enclave.dh_public)
        host = _BaselineHost(self.platform)
        channel = EncryptedRpcChannel(
            EnclaveEndpoint(enclave=None, mos=host),
            EnclaveEndpoint(enclave=enclave, mos=host),
            secret,
            self.transport,
        )
        return HixRuntime(self, channel)

    def _release_gpu(self) -> None:
        self._gpu_busy = False
