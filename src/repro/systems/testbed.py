"""The standard simulated testbed (paper table II).

A four-core AArch64 machine with 8 GiB normal + 4 GiB secure memory, one to
four passthrough NVIDIA-class GPUs on the secure PCIe bus, and one
VTA-compatible NPU implemented as a PCIe device running the fsim simulator
(paper section V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.accel.cpu import CpuDevice
from repro.accel.gpu import GpuDevice
from repro.accel.npu import NpuDevice
from repro.hw.devices import MMIORegion
from repro.hw.platform import Platform, PlatformConfig
from repro.sim import CostModel, SimClock

_MMIO_STRIDE = 0x0100_0000
_MMIO_BASE = 0x4000_0000
_IRQ_BASE = 40


@dataclass(frozen=True)
class TestbedConfig:
    """Knobs for the standard machine."""

    __test__ = False  # not a pytest test class despite the name

    num_gpus: int = 1
    with_npu: bool = True
    gpu_memory_bytes: int = 8 << 30
    npu_memory_bytes: int = 256 << 20
    isolation: str = "trustzone"  # or "riscv-pmp" (paper section VII-A)


def make_platform(
    config: Optional[TestbedConfig] = None,
    *,
    costs: Optional[CostModel] = None,
) -> Platform:
    """Build the table-II machine: CPU + GPUs + NPU on the secure bus."""
    config = config or TestbedConfig()
    platform = Platform(
        PlatformConfig(isolation=config.isolation), clock=SimClock(), costs=costs
    )
    arm = platform.register_vendor("arm")
    nvidia = platform.register_vendor("nvidia")
    vta = platform.register_vendor("vta")

    slot = 0

    def next_window() -> MMIORegion:
        nonlocal slot
        region = MMIORegion(base=_MMIO_BASE + slot * _MMIO_STRIDE, size=_MMIO_STRIDE)
        slot += 1
        return region

    cpu = CpuDevice("cpu0", platform.clock, platform.costs, mmio=next_window(),
                    irq=_IRQ_BASE, vendor=arm, cores=4)
    platform.attach_device(cpu)

    for i in range(config.num_gpus):
        gpu = GpuDevice(
            f"gpu{i}",
            platform.clock,
            platform.costs,
            mmio=next_window(),
            irq=_IRQ_BASE + 1 + i,
            vendor=nvidia,
            memory_bytes=config.gpu_memory_bytes,
        )
        platform.attach_device(gpu)

    if config.with_npu:
        npu = NpuDevice(
            "npu0",
            platform.clock,
            platform.costs,
            mmio=next_window(),
            irq=_IRQ_BASE + 1 + config.num_gpus,
            vendor=vta,
            memory_bytes=config.npu_memory_bytes,
        )
        platform.attach_device(npu)

    platform.build_device_tree()
    return platform
