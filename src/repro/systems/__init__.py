"""Assembled systems: CRONUS and the paper's three baselines.

All four expose the same heterogeneous runtime interface (CUDA calls, VTA
calls, CPU compute) over the same simulated platform, so workloads run
unmodified on each and the benchmarks compare simulated elapsed time:

* :class:`CronusSystem` — full MicroTEE stack: per-device partitions,
  mOSes, mEnclaves, sRPC (the paper's system).
* :class:`MonolithicTrustZone` — "TrustZone" baseline: all drivers in one
  secure OS; fast, spatially shared, but no fault/security isolation.
* :class:`HixTrustZone` — HIX emulation: app enclave talks to a dedicated
  GPU enclave through encrypted lock-step RPC over untrusted memory.
* :class:`NativeLinux` — no TEE at all (the normalization baseline).
"""

from repro.systems.testbed import TestbedConfig, make_platform
from repro.systems.base import (
    BaselineSystem,
    DirectHal,
    HixTrustZone,
    MonolithicTrustZone,
    NativeLinux,
    System,
    SystemError,
)
from repro.systems.cronus import CronusSystem

__all__ = [
    "TestbedConfig",
    "make_platform",
    "System",
    "SystemError",
    "BaselineSystem",
    "DirectHal",
    "NativeLinux",
    "MonolithicTrustZone",
    "HixTrustZone",
    "CronusSystem",
]
