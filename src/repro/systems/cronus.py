"""The CRONUS system: the full MicroTEE stack, assembled.

Boot order mirrors paper section V-A: the secure monitor validates the
device tree handed over by the untrusted OS and locks down isolation
hardware; the SPM creates one partition per device; each partition loads
its mOS (measured by the monitor) at system startup so mEnclaves never
wait for an mOS boot; the Enclave Dispatcher in the normal world routes
application requests to partitions.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.crypto.keys import PublicKey
from repro.dispatch.application import Application
from repro.dispatch.dispatcher import EnclaveDispatcher
from repro.dispatch.partitioner import AutoPartitioner, PartitionedRuntime
from repro.enclave.images import CpuImage, CudaImage, NpuImage
from repro.mos.microos import MicroOS
from repro.secure.monitor import AttestationReport, SecureMonitor
from repro.secure.spm import SPM, RecoveryReport
from repro.systems.base import System, SystemError
from repro.systems.testbed import TestbedConfig

# The mOS images shipped by the normal OS.  Content stands in for the real
# binaries (optee core / nouveau+gdev / VTA fsim driver, table III).
_MOS_IMAGES = {
    "cpu": b"optee-core mOS image v3.19 [shim core + CPU HAL]",
    "gpu": b"nouveau+gdev mOS image [shim core + GPU HAL, Turing]",
    "npu": b"vta-fsim mOS image [shim core + NPU HAL]",
}


class CronusSystem(System):
    """CRONUS: per-device S-EL2 partitions with sRPC between mEnclaves."""

    name = "cronus"
    supports_npu = True
    supports_spatial_sharing = True
    fault_isolated = True
    security_isolated = True

    def __init__(
        self,
        testbed: Optional[TestbedConfig] = None,
        *,
        costs=None,
        rpc_mode: str = "srpc",
        trace: bool = False,
        obs: bool = False,
    ) -> None:
        super().__init__(testbed, costs=costs, trace=trace, obs=obs)
        self.rpc_mode = rpc_mode
        # Normal-world boot: hand the DT to the monitor, then bring up SPM
        # and one mOS per secure device.
        self.monitor = SecureMonitor(self.platform)
        self.monitor.boot(self.platform.device_tree)
        self.spm = SPM(self.platform, self.monitor)
        self.dispatcher = EnclaveDispatcher()
        self.moses: Dict[str, MicroOS] = {}
        for device in self.platform.devices():
            partition = self.spm.create_partition(f"part-{device.name}", device)
            image = _MOS_IMAGES.get(device.device_type, b"generic mOS image")
            mos = MicroOS(
                name=f"mos-{device.name}",
                image=image,
                partition=partition,
                platform=self.platform,
                spm=self.spm,
                monitor=self.monitor,
            )
            self.moses[device.name] = mos
            self.dispatcher.register(mos)
            self.platform.clock.advance(self.platform.costs.mos_reload_us)
        self._apps: Dict[str, Application] = {}

    # -- applications ------------------------------------------------------
    def application(self, name: str) -> Application:
        """Create (or return) a named application in the normal world."""
        if name not in self._apps:
            self._apps[name] = Application(
                name, self.dispatcher, self.spm, rpc_mode=self.rpc_mode
            )
        return self._apps[name]

    def runtime(
        self,
        *,
        cuda_kernels: Tuple[str, ...] = (),
        npu_programs: Optional[Dict[str, object]] = None,
        cpu_functions: Optional[Dict[str, object]] = None,
        gpu_name: Optional[str] = None,
        owner: str = "app",
        **_ignored,
    ) -> PartitionedRuntime:
        """Auto-partition a heterogeneous task into mEnclaves + sRPC."""
        app = self.application(owner)
        cpu_image = CpuImage(
            name=f"{owner}-cpu",
            functions=dict(cpu_functions or {"noop": lambda state: None}),
        )
        cuda_image = (
            CudaImage(name=f"{owner}-cuda", kernels=tuple(cuda_kernels))
            if cuda_kernels
            else None
        )
        npu_image = (
            NpuImage(name=f"{owner}-vta", programs=dict(npu_programs))
            if npu_programs
            else None
        )
        return AutoPartitioner(app).partition(
            cpu_image,
            cuda_image=cuda_image,
            npu_image=npu_image,
            gpu_device_name=gpu_name,
        )

    def release(self, rt: PartitionedRuntime) -> None:
        rt.close()

    # -- attestation ----------------------------------------------------------
    def attest_platform(self) -> AttestationReport:
        """Produce the full report a client verifies before sending data."""
        menclave_hashes: Dict[str, str] = {}
        accelerator_keys: Dict[str, PublicKey] = {}
        for mos in self.moses.values():
            menclave_hashes.update(mos.manager.measurements())
            vendor_cert = mos.partition.device.vendor_cert
            if vendor_cert is not None and mos.device_type != "cpu":
                anchor = self.platform.vendors[vendor_cert.issuer_name].public
                accelerator_keys[mos.partition.device.name] = mos.hal.attest_device(anchor)
        return self.monitor.attest(menclave_hashes, accelerator_keys)

    # -- failure handling ----------------------------------------------------------
    def inject_device_failure(self, device_name: str) -> float:
        """Panic the partition managing ``device_name``; only it restarts."""
        report = self.fail_partition(device_name)
        return report.total_us

    def stats(self) -> dict:
        """Base device counters plus partition/enclave bookkeeping."""
        out = super().stats()
        out["partitions"] = {
            mos.partition.name: {
                "state": mos.partition.state.value,
                "restarts": mos.partition.restarts,
                "enclaves": len(mos.manager.enclaves()),
                "reserved_bytes": mos.manager.reserved_bytes,
            }
            for mos in self.moses.values()
        }
        return out

    def fail_partition(self, device_name: str, *, background: bool = False) -> RecoveryReport:
        mos = self.moses.get(device_name)
        if mos is None:
            raise SystemError(f"no partition manages device {device_name!r}")
        mos.manager.destroy_all()
        return self.spm.report_panic(mos.partition.name, background=background)

    def update_mos(self, device_name: str, new_image: bytes) -> RecoveryReport:
        """Proactive mOS update (failure circumstance 1 of section IV-D).

        The partition restarts through the same proceed-trap path as a
        crash — running enclaves are torn down, shared memory invalidated —
        and the new image is measured, so clients that pinned the previous
        mOS version will (correctly) fail attestation until they audit the
        new one (section III-B: a service trusts only its used mOS version).
        """
        mos = self.moses.get(device_name)
        if mos is None:
            raise SystemError(f"no partition manages device {device_name!r}")
        mos.manager.destroy_all()
        report = self.spm.request_restart(mos.partition.name)
        mos.image = new_image
        mos.measurement_hex = self.monitor.measure_mos(mos.name, new_image)
        return report
