"""mEnclave manifests.

A manifest (figure 3 of the paper) declares the device type, the hashes of
every image the mEnclave loads, the list of mECalls (with the
synchronous/asynchronous flag CRONUS adds to the ``edl`` format for sRPC),
and the resource capacity.  The Enclave Manager refuses to load images
whose measurement does not match the manifest, and the attestation report
covers the manifest's closure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.crypto.hashing import measure


class ManifestError(Exception):
    """A malformed manifest or a failed image-hash check."""


@dataclass(frozen=True)
class MECallSpec:
    """One mECall declaration: its name and whether callers must wait.

    ``synchronous=False`` marks calls sRPC may stream without joining the
    consumer (e.g. ``cudaLaunchKernel``); ``synchronous=True`` marks calls
    that return data or order the device (e.g. ``cudaMemcpyD2H``).
    """

    name: str
    synchronous: bool = True


@dataclass(frozen=True)
class Manifest:
    """The complete mEnclave description a client attests against."""

    device_type: str
    images: Dict[str, str]  # file name -> hex SHA-256
    mecalls: Tuple[MECallSpec, ...]
    memory_bytes: int = 1 << 30

    def __post_init__(self) -> None:
        if self.device_type not in ("cpu", "gpu", "npu"):
            raise ManifestError(f"unknown device type {self.device_type!r}")
        if self.memory_bytes <= 0:
            raise ManifestError(f"bad memory capacity {self.memory_bytes}")
        names = [c.name for c in self.mecalls]
        if len(names) != len(set(names)):
            raise ManifestError("duplicate mECall names")

    def mecall(self, name: str) -> MECallSpec:
        for call in self.mecalls:
            if call.name == name:
                return call
        raise ManifestError(f"mECall {name!r} not declared in manifest")

    def allows(self, name: str) -> bool:
        return any(c.name == name for c in self.mecalls)

    def check_image(self, file_name: str, blob: bytes) -> None:
        """Verify one image blob against its declared hash."""
        declared = self.images.get(file_name)
        if declared is None:
            raise ManifestError(f"image {file_name!r} not declared in manifest")
        actual = measure(blob).hex()
        if actual != declared:
            raise ManifestError(
                f"image {file_name!r} hash mismatch: manifest={declared[:16]}... "
                f"actual={actual[:16]}..."
            )

    def serialize(self) -> bytes:
        """Canonical bytes, measured into the mEnclave's identity."""
        body = {
            "device_type": self.device_type,
            "images": dict(sorted(self.images.items())),
            "mecalls": [
                {"name": c.name, "synchronous": c.synchronous} for c in self.mecalls
            ],
            "resources": {"memory": self.memory_bytes},
        }
        return json.dumps(body, sort_keys=True).encode()

    @classmethod
    def from_json(cls, raw: bytes) -> "Manifest":
        """Parse the JSON form shown in figure 3 of the paper."""
        try:
            body = json.loads(raw.decode())
            mecalls = tuple(
                MECallSpec(name=c["name"], synchronous=c.get("synchronous", True))
                for c in body["mecalls"]
            )
            return cls(
                device_type=body["device_type"],
                images=dict(body.get("images", {})),
                mecalls=mecalls,
                memory_bytes=int(body.get("resources", {}).get("memory", 1 << 30)),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ManifestError(f"malformed manifest: {exc}") from exc
