"""The MicroEnclave (mEnclave) model.

An mEnclave is a black-box executor ``<mECalls, state>`` (paper section
IV-A): a fixed set of entry points over hidden internal state, created from
a manifest that pins the device type, image hashes, mECall list and
resource capacity.  Execution models give the abstraction life on each
device class: a dynamic-library analog on CPU, a CUDA runtime on GPU, a
VTA runtime on NPU.
"""

from repro.enclave.manifest import Manifest, ManifestError, MECallSpec
from repro.enclave.images import (
    CpuImage,
    CudaImage,
    ImageError,
    NpuImage,
)
from repro.enclave.models import (
    CpuExecutionModel,
    CudaExecutionModel,
    ExecutionError,
    NpuExecutionModel,
    model_for_device,
)
from repro.enclave.menclave import MEnclave, OwnershipError, make_eid, split_eid

__all__ = [
    "Manifest",
    "ManifestError",
    "MECallSpec",
    "CpuImage",
    "CudaImage",
    "NpuImage",
    "ImageError",
    "CpuExecutionModel",
    "CudaExecutionModel",
    "NpuExecutionModel",
    "ExecutionError",
    "model_for_device",
    "MEnclave",
    "OwnershipError",
    "make_eid",
    "split_eid",
]
