"""mEnclave images.

The paper's mEnclave image is "a file that stores execution code": a
dynamic library (``.so``) for CPU mEnclaves, a CUDA ELF (``.cubin``) for
CUDA mEnclaves, compiled VTA programs for NPU mEnclaves.  Our images pair
executable content (python callables / kernel name sets / NPU programs)
with a deterministic byte blob so manifests can pin their hashes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.accel.npu import NpuProgram
from repro.crypto.hashing import hexdigest


class ImageError(Exception):
    """Referencing content absent from an image."""


@dataclass(frozen=True)
class CpuImage:
    """The '.so' analog: named python callables.

    ``functions`` receive ``(state: dict, *args, **kwargs)`` — the mutable
    ``state`` dict is the enclave's private memory.  ``flops`` (optional per
    function) drives the CPU timing model.
    """

    name: str
    functions: Dict[str, Callable]
    flops: Dict[str, float] = field(default_factory=dict)

    def blob(self) -> bytes:
        """Deterministic content for measurement: names + code objects
        (bytecode, constants and referenced names — enough that changing a
        function body changes the measurement)."""
        body = {}
        for fn_name, fn in sorted(self.functions.items()):
            if hasattr(fn, "__code__"):
                code = fn.__code__
                body[fn_name] = [
                    code.co_code.hex(),
                    repr(code.co_consts),
                    repr(code.co_names),
                ]
            else:
                body[fn_name] = [fn_name]
        return json.dumps({"so": self.name, "functions": body}, sort_keys=True).encode()

    def digest(self) -> str:
        return hexdigest(self.blob())

    def function(self, fn_name: str) -> Callable:
        try:
            return self.functions[fn_name]
        except KeyError:
            raise ImageError(f"function {fn_name!r} not in image {self.name!r}") from None


@dataclass(frozen=True)
class CudaImage:
    """The '.cubin' analog: the set of kernels this enclave may launch.

    Kernel implementations live in the device's registry
    (:data:`repro.accel.gpu.KERNEL_REGISTRY`); the image only *names* them,
    as a cubin names its kernels, and launching anything else is rejected.
    """

    name: str
    kernels: Tuple[str, ...]

    def blob(self) -> bytes:
        return json.dumps({"cubin": self.name, "kernels": sorted(self.kernels)}).encode()

    def digest(self) -> str:
        return hexdigest(self.blob())

    def allows_kernel(self, kernel_name: str) -> bool:
        return kernel_name in self.kernels


@dataclass(frozen=True)
class NpuImage:
    """Compiled VTA programs, keyed by name."""

    name: str
    programs: Dict[str, NpuProgram]

    def blob(self) -> bytes:
        body = {
            prog_name: [ins.op for ins in prog.instructions]
            for prog_name, prog in sorted(self.programs.items())
        }
        return json.dumps({"vta": self.name, "programs": body}, sort_keys=True).encode()

    def digest(self) -> str:
        return hexdigest(self.blob())

    def program(self, prog_name: str) -> NpuProgram:
        try:
            return self.programs[prog_name]
        except KeyError:
            raise ImageError(f"program {prog_name!r} not in image {self.name!r}") from None
