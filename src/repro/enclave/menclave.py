"""The MicroEnclave object.

Identity: a 32-bit eid whose first 8 bits are the mOS id and last 24 bits
the enclave id within that mOS (paper section IV-A) — the SPM uses the mOS
part to validate cross-mOS messages.

Ownership: the creator and the enclave run a Diffie-Hellman exchange at
creation time and share ``secret_dhke``.  Every mECall arriving over the
*untrusted* path must carry a fresh MAC under that secret (monotonic call
counter, so replays are rejected); the *trusted* path (an sRPC channel) is
authenticated once at dCheck time and then calls directly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.crypto.dh import DiffieHellman, mac, mac_valid
from repro.enclave.manifest import Manifest, ManifestError
from repro.enclave.models import ExecutionError


class OwnershipError(Exception):
    """mECall rejected: caller is not the owner or the MAC/counter is bad."""


def make_eid(mos_id: int, local_id: int) -> int:
    """Compose an eid: 8 bits of mOS id, 24 bits of local enclave id."""
    if not 0 <= mos_id < (1 << 8):
        raise ValueError(f"mOS id {mos_id} out of 8-bit range")
    if not 0 <= local_id < (1 << 24):
        raise ValueError(f"local enclave id {local_id} out of 24-bit range")
    return (mos_id << 24) | local_id


def split_eid(eid: int) -> tuple:
    """Decompose an eid into (mos_id, local_id)."""
    return (eid >> 24) & 0xFF, eid & 0xFFFFFF


class MEnclave:
    """A loaded, running MicroEnclave."""

    def __init__(
        self,
        eid: int,
        manifest: Manifest,
        model,
        state: Dict[str, Any],
        measurement: bytes,
        creator_dh_public: int,
        dh_seed: bytes,
    ) -> None:
        self.eid = eid
        self.manifest = manifest
        self._model = model
        self._state = state
        self.measurement = measurement
        self.alive = True
        self.calls_served = 0
        # DH exchange with the creator: derive secret_dhke and remember our
        # public value so the creator can derive the same secret.
        exchange = DiffieHellman(dh_seed)
        self.dh_public = exchange.public
        self._secret_dhke = exchange.shared_secret(creator_dh_public)
        self._last_counter = 0

    # -- ownership ---------------------------------------------------------
    def owner_tag(self, secret: bytes, fn: str, counter: int) -> bytes:
        """What the owner must attach to an untrusted-path mECall."""
        return mac(secret, self._call_payload(fn, counter))

    def _call_payload(self, fn: str, counter: int) -> bytes:
        return json.dumps({"eid": self.eid, "fn": fn, "ctr": counter}).encode()

    def prove_secret(self, challenge: bytes) -> bytes:
        """dCheck helper: prove possession of secret_dhke over a channel."""
        return mac(self._secret_dhke, b"dcheck" + challenge)

    def secret_matches(self, response: bytes, challenge: bytes) -> bool:
        return mac_valid(self._secret_dhke, b"dcheck" + challenge, response)

    # -- mECall paths ---------------------------------------------------------
    def mecall_untrusted(
        self,
        fn: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        *,
        counter: int,
        tag: bytes,
    ) -> Any:
        """The untrusted path: caller must MAC (eid, fn, counter) with
        secret_dhke and use a strictly increasing counter (anti-replay)."""
        if counter <= self._last_counter:
            raise OwnershipError(
                f"stale call counter {counter} (last {self._last_counter}): replay rejected"
            )
        if not mac_valid(self._secret_dhke, self._call_payload(fn, counter), tag):
            raise OwnershipError(f"mECall {fn!r} MAC invalid: caller is not the owner")
        self._last_counter = counter
        return self._invoke(fn, args, kwargs or {})

    def mecall_trusted(self, fn: str, args: tuple = (), kwargs: Optional[dict] = None) -> Any:
        """The trusted path, used by an sRPC channel after dCheck."""
        return self._invoke(fn, args, kwargs or {})

    def _invoke(self, fn: str, args: tuple, kwargs: dict) -> Any:
        if not self.alive:
            raise ExecutionError(f"mEnclave {self.eid:#010x} destroyed")
        if not self.manifest.allows(fn):
            raise ManifestError(f"mECall {fn!r} not in the manifest's static list")
        self.calls_served += 1
        return self._model.me_call(self._state, fn, args, kwargs)

    # -- lifecycle ---------------------------------------------------------------
    def destroy(self) -> None:
        if self.alive:
            self._model.me_destroy(self._state)
            self.alive = False

    def is_synchronous(self, fn: str) -> bool:
        """The sRPC annotation for this call (section IV-A edl extension)."""
        return self.manifest.mecall(fn).synchronous

    def __repr__(self) -> str:
        return f"MEnclave(eid={self.eid:#010x}, device={self.manifest.device_type})"
