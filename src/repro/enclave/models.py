"""Execution models.

The paper models an mEnclave as a black-box executor whose *implementation*
varies by device: "an executor can execute a dynamic library ... and a CUDA
executable file" (section IV-A).  Each model implements the lifecycle hooks
(``me_create`` / ``me_call`` / ``me_destroy``) against its device's HAL.

The mECall surfaces mirror the runtimes CRONUS ports: the CUDA model
exposes the gdev/ocelot-style CUDA API, the NPU model the VTA fsim runtime,
the CPU model the functions of the loaded library.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.enclave.images import CpuImage, CudaImage, ImageError, NpuImage
from repro.enclave.manifest import MECallSpec


class ExecutionError(Exception):
    """A rejected or failed mECall inside the execution model."""


class CpuExecutionModel:
    """Dynamic-library execution on the CPU device (OPTEE-style TA)."""

    device_type = "cpu"

    def me_create(self, image: CpuImage, hal, memory_quota: int = None) -> Dict[str, Any]:
        if not isinstance(image, CpuImage):
            raise ExecutionError(f"CPU model cannot load {type(image).__name__}")
        return {"image": image, "memory": {}, "hal": hal}

    def me_call(self, state: Dict[str, Any], fn: str, args: tuple, kwargs: dict) -> Any:
        image: CpuImage = state["image"]
        try:
            target = image.function(fn)
        except ImageError as exc:
            raise ExecutionError(str(exc)) from exc
        flops = image.flops.get(fn, 0.0)
        return state["hal"].cpu_device.execute(
            target, state["memory"], *args, flops=flops, **kwargs
        )

    def me_destroy(self, state: Dict[str, Any]) -> None:
        state["memory"].clear()


class CudaExecutionModel:
    """CUDA execution on the GPU device, restricted to the image's kernels."""

    device_type = "gpu"

    def me_create(self, image: CudaImage, hal, memory_quota: int = None) -> Dict[str, Any]:
        if not isinstance(image, CudaImage):
            raise ExecutionError(f"CUDA model cannot load {type(image).__name__}")
        context = hal.create_gpu_context(owner=image.name, quota_bytes=memory_quota)
        return {"image": image, "context": context}

    def me_call(self, state: Dict[str, Any], fn: str, args: tuple, kwargs: dict) -> Any:
        context = state["context"]
        image: CudaImage = state["image"]
        if fn == "cudaMalloc":
            shape = tuple(args[0])
            dtype = np.dtype(kwargs.get("dtype", "float32"))
            return context.alloc(shape, dtype=dtype)
        if fn == "cudaFree":
            context.free(args[0])
            return None
        if fn == "cudaMemcpyH2D":
            handle, host = args
            context.memcpy_h2d(handle, np.asarray(host))
            return None
        if fn == "cudaMemcpyD2H":
            return context.memcpy_d2h(args[0])
        if fn == "cudaLaunchKernel":
            kernel_name = args[0]
            if not image.allows_kernel(kernel_name):
                raise ExecutionError(
                    f"kernel {kernel_name!r} not present in cubin {image.name!r}"
                )
            handles = list(args[1])
            context.launch(kernel_name, handles, **kwargs)
            return None
        if fn == "cudaDeviceSynchronize":
            context.synchronize()
            return None
        raise ExecutionError(f"unknown CUDA mECall {fn!r}")

    def me_destroy(self, state: Dict[str, Any]) -> None:
        state["context"].destroy()


class NpuExecutionModel:
    """VTA runtime execution on the NPU device."""

    device_type = "npu"

    def me_create(self, image: NpuImage, hal, memory_quota: int = None) -> Dict[str, Any]:
        if not isinstance(image, NpuImage):
            raise ExecutionError(f"NPU model cannot load {type(image).__name__}")
        # Each mEnclave gets a private NPU tensor namespace (section V-B);
        # bare devices (baseline systems) are used directly.
        create = getattr(hal, "create_npu_context", None)
        executor = create(image.name) if create is not None else hal.npu_device
        return {"image": image, "device": executor}

    def me_call(self, state: Dict[str, Any], fn: str, args: tuple, kwargs: dict) -> Any:
        device = state["device"]
        image: NpuImage = state["image"]
        if fn == "vtaWriteTensor":
            name, array = args
            device.write_tensor(name, np.asarray(array))
            return None
        if fn == "vtaReadTensor":
            return device.read_tensor(args[0])
        if fn == "vtaRun":
            try:
                program = image.program(args[0])
            except ImageError as exc:
                raise ExecutionError(str(exc)) from exc
            device.run(program)
            return None
        if fn == "vtaSynchronize":
            device.synchronize()
            return None
        raise ExecutionError(f"unknown VTA mECall {fn!r}")

    def me_destroy(self, state: Dict[str, Any]) -> None:
        pass


_MODELS = {
    "cpu": CpuExecutionModel,
    "gpu": CudaExecutionModel,
    "npu": NpuExecutionModel,
}


def model_for_device(device_type: str):
    """Instantiate the execution model for a manifest's device type."""
    try:
        return _MODELS[device_type]()
    except KeyError:
        raise ExecutionError(f"no execution model for device type {device_type!r}") from None


# The standard mECall surfaces, used when building manifests.  The
# synchronous flag is the sRPC annotation from section IV-A: asynchronous
# calls are streamed without joining the consumer.
CUDA_MECALLS: Tuple[MECallSpec, ...] = (
    MECallSpec("cudaMalloc", synchronous=True),
    MECallSpec("cudaFree", synchronous=False),
    MECallSpec("cudaMemcpyH2D", synchronous=False),
    MECallSpec("cudaMemcpyD2H", synchronous=True),
    MECallSpec("cudaLaunchKernel", synchronous=False),
    MECallSpec("cudaDeviceSynchronize", synchronous=True),
)

NPU_MECALLS: Tuple[MECallSpec, ...] = (
    MECallSpec("vtaWriteTensor", synchronous=False),
    MECallSpec("vtaReadTensor", synchronous=True),
    MECallSpec("vtaRun", synchronous=False),
    MECallSpec("vtaSynchronize", synchronous=True),
)
