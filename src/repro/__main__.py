"""Command-line interface: ``python -m repro <command>``.

Quick entry points for the common flows without writing a script:

* ``attest``   — boot a system, produce and verify a platform report.
* ``attacks``  — run the full adversary battery.
* ``rodinia``  — figure 7: Rodinia across all four systems.
* ``train``    — figure 8: LeNet training across all four systems.
* ``failover`` — figure 9: two-task crash/recover timeline.
* ``tcb``      — table III: per-tenant TCB accounting.
* ``cluster``  — 2-node sharded serving demo with a node kill and
  checkpoint migration (section VII-C extension).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_attest(_args) -> int:
    from repro import CronusSystem
    from repro.secure.monitor import verify_attestation_report

    system = CronusSystem()
    report = system.attest_platform()
    verify_attestation_report(
        report,
        system.platform.attestation_service.public,
        {name: ca.public for name, ca in system.platform.vendors.items()},
        {
            d.name: d.vendor_cert
            for d in system.platform.devices()
            if d.vendor_cert is not None and d.device_type != "cpu"
        },
    )
    print("attestation verified")
    for name, digest in sorted(report.mos_hashes.items()):
        print(f"  {name}: {digest[:24]}...")
    return 0


def _cmd_attacks(_args) -> int:
    from repro.attacks import run_all_attacks

    outcomes = run_all_attacks()
    width = max(len(o.name) for o in outcomes)
    for o in outcomes:
        print(f"{o.name:<{width}}  {'BLOCKED' if o.blocked else 'BREACH':8s}  {o.detail}")
    failed = [o for o in outcomes if not o.blocked]
    print(f"\n{len(outcomes) - len(failed)}/{len(outcomes)} blocked")
    return 1 if failed else 0


def _cmd_rodinia(args) -> int:
    from repro.metrics import format_table, normalize
    from repro.systems import CronusSystem, HixTrustZone, MonolithicTrustZone, NativeLinux
    from repro.workloads.rodinia import RODINIA, all_kernels

    names = args.bench or sorted(RODINIA)
    rows = []
    for name in names:
        times = {}
        for cls in (NativeLinux, MonolithicTrustZone, HixTrustZone, CronusSystem):
            system = cls()
            rt = system.runtime(cuda_kernels=all_kernels(), owner="cli")
            start = system.clock.now
            RODINIA[name].run(rt)
            times[system.name] = system.clock.now - start
            system.release(rt)
        norm = normalize(times, "linux")
        rows.append([name] + [f"{norm[k]:.3f}" for k in
                              ("linux", "trustzone", "cronus", "hix-trustzone")])
    print(format_table(["bench", "linux", "trustzone", "cronus", "hix"], rows))
    return 0


def _cmd_train(_args) -> int:
    from repro.metrics import format_table, normalize
    from repro.systems import CronusSystem, HixTrustZone, MonolithicTrustZone, NativeLinux
    from repro.workloads.datasets import synthetic_mnist
    from repro.workloads.dnn import TRAINING_KERNELS, lenet, train

    data = synthetic_mnist(64)
    times = {}
    for cls in (NativeLinux, MonolithicTrustZone, HixTrustZone, CronusSystem):
        system = cls()
        rt = system.runtime(cuda_kernels=TRAINING_KERNELS, owner="cli")
        model = lenet()
        start = system.clock.now
        train(rt, model, data, epochs=1, batch_size=16)
        times[system.name] = system.clock.now - start
        model.free(rt)
        system.release(rt)
    norm = normalize(times, "linux")
    rows = [[k, f"{times[k] / 1000:.2f} ms", f"{norm[k]:.3f}x"] for k in times]
    print(format_table(["system", "time", "vs native"], rows))
    return 0


def _cmd_failover(_args) -> int:
    from repro.faults import run_failover_experiment

    result = run_failover_experiment()
    print(f"recovery: {result.recovery_us / 1000:.1f} ms; "
          f"resubmit: {result.resubmit_us / 1000:.2f} ms; reboot baseline: 120 s")
    print("task-a:", result.throughput["task-a"])
    print("task-b:", result.throughput["task-b"])
    return 0


def _cmd_tcb(_args) -> int:
    from repro.metrics import format_table, tcb_report

    report = tcb_report()
    print(format_table(["component", "LoC"], sorted(report.items())))
    return 0


def _cmd_trace(_args) -> int:
    """Run a small traced scenario and dump the event log."""
    import numpy as np

    from repro import CronusSystem

    system = CronusSystem(trace=True)
    rt = system.runtime(cuda_kernels=("vecadd",), owner="traced")
    a = rt.cudaMalloc((16,))
    rt.cudaMemcpyH2D(a, np.ones(16, np.float32))
    rt.cudaLaunchKernel("vecadd", [a, a, a])
    rt.cudaDeviceSynchronize()
    system.fail_partition("gpu0")
    try:
        rt.cudaMalloc((16,))
    except Exception:
        pass  # expected: the stream observes the failure and traps
    for event in system.platform.tracer.events():
        print(event)
    return 0


def _cmd_obs(args) -> int:
    """Figure 9 with observability on: Perfetto trace + recovery breakdown."""
    from repro.faults.campaign import make_figure9_system
    from repro.faults.failover import run_failover_experiment
    from repro.metrics import recovery_table, span_tree
    from repro.obs import (
        chrome_trace,
        collect_system_metrics,
        recovery_phases,
        validate_chrome_trace,
        write_chrome_trace,
    )

    system = make_figure9_system(obs=args.obs_enabled)
    result = run_failover_experiment(
        system=system,
        duration_us=600_000.0,
        crash_at_us=200_000.0,
        bucket_us=50_000.0,
        detection=args.detection,
    )
    obs = system.platform.obs
    print(f"spans recorded: {len(obs)} (dropped {obs.dropped}); "
          f"flight dumps: {len(obs.flight_dumps)}")
    if not obs.enabled:
        print("observability disabled (--disabled); nothing to export")
        return 0

    problems = validate_chrome_trace(chrome_trace(obs))
    if problems:
        for problem in problems:
            print(f"SCHEMA: {problem}", file=sys.stderr)
        return 1
    print(f"chrome trace: {write_chrome_trace(obs, args.out)} (schema ok)")

    # The crashed request's trace: recovery spans live in the trace of the
    # request that was active on the partition when it died.
    recovery_spans = obs.spans(category="recovery")
    trace_id = recovery_spans[0].context.trace_id if recovery_spans else None
    phases = recovery_phases(obs, trace_id=trace_id)
    print(f"\nrecovery breakdown (trace {trace_id}):")
    print(recovery_table(phases))
    failover_us = result.detection_us + result.recovery_us + result.resubmit_us
    print(f"reported failover latency: {failover_us:.3f} us "
          f"(detect {result.detection_us:.3f} + recover {result.recovery_us:.3f}"
          f" + resubmit {result.resubmit_us:.3f})")

    if trace_id is not None:
        print(f"\nspan tree of the crashed request (trace {trace_id}):")
        print(span_tree(obs.spans(trace_id=trace_id)))

    registry = collect_system_metrics(system)
    print(f"\nmetrics fingerprint: {registry.fingerprint()}")
    print(registry.render())
    return 0


def _cmd_cluster(args) -> int:
    """A tiny sharded-cluster serving demo: 2 nodes, a mid-trace node
    kill, checkpoint migration, and the merged cluster SLO table."""
    from repro.cluster import Cluster, ClusterServingSystem
    from repro.serve.loadgen import LoadProfile, generate_trace, synthetic_service_model

    profile = LoadProfile(
        tenants=6,
        requests=args.requests,
        mean_rate_rps=120_000.0,
        deadline_us=80_000.0,
    )
    specs, requests = generate_trace(profile)
    cluster = Cluster(num_nodes=2, gpus_per_node=1)
    serving = ClusterServingSystem(
        cluster, service_model=synthetic_service_model()
    )
    serving.add_tenants(specs)
    kill_at = 0.5 * profile.requests / profile.mean_rate_rps * 1e6
    report = serving.run(requests, node_kill_events=[(kill_at, "node1")])

    print(f"cluster SLO (merged across {len(report.node_names)} nodes):")
    print(report.slo_text)
    print("\nper-node scale view:")
    print(report.node_table())
    print(
        f"\nkilled node1 at {kill_at / 1e3:.1f} ms: "
        f"{len(report.migrations)} checkpoint-restores, "
        f"{report.migrated_requests} requests migrated, "
        f"{report.scrub_pages_audited} session pages scrub-audited "
        f"({report.scrub_violations} violations)"
    )
    audit = report.audit_exactly_once()
    print(f"exactly-once audit: {'clean' if not audit else audit[:3]}")
    print(f"cluster fingerprint: {report.fingerprint}")
    return 1 if audit else 0


def _cmd_top(args) -> int:
    """The cluster's live-ops view: run the sharded-cluster demo with the
    telemetry pipeline attached and print per-node / per-tenant SLO
    tables, fired alerts (with recovery traces) and tail-sampler stats."""
    from repro.cluster import Cluster, ClusterServingSystem
    from repro.obs import TelemetryPipeline
    from repro.serve.loadgen import LoadProfile, generate_trace, synthetic_service_model

    profile = LoadProfile(
        tenants=6,
        requests=args.requests,
        mean_rate_rps=120_000.0,
        deadline_us=80_000.0,
    )
    specs, requests = generate_trace(profile)
    cluster = Cluster(num_nodes=2, gpus_per_node=1)
    telemetry = TelemetryPipeline(scrape_interval_us=args.scrape_us)
    serving = ClusterServingSystem(
        cluster, service_model=synthetic_service_model(), telemetry=telemetry
    )
    serving.add_tenants(specs)
    kill_at = 0.5 * profile.requests / profile.mean_rate_rps * 1e6
    report = serving.run(requests, node_kill_events=[(kill_at, "node1")])

    print(f"nodes ({len(report.node_names)}):")
    print(telemetry.node_table())
    print("\ntenants:")
    print(telemetry.tenant_table())
    print("\nalerts:")
    print(telemetry.alert_table())
    stats = telemetry.sampler_stats()
    print(
        f"\ntail sampler: {stats.get('retained', 0)}/{stats.get('considered', 0)} "
        f"traces retained ({stats.get('retained_bytes', 0)} bytes, "
        f"budget {stats.get('byte_budget', 0)}), "
        f"{stats.get('discarded_spans', 0)} spans discarded"
    )
    if args.dump_traces is not None:
        written = telemetry.alerts.dump_recovery_traces(args.dump_traces)
        print(f"recovery traces dumped: {written if written else 'none'}")
    print(f"telemetry fingerprint: {telemetry.fingerprint()}")
    return 0


_COMMANDS = {
    "attest": _cmd_attest,
    "attacks": _cmd_attacks,
    "rodinia": _cmd_rodinia,
    "train": _cmd_train,
    "failover": _cmd_failover,
    "tcb": _cmd_tcb,
    "trace": _cmd_trace,
    "obs": _cmd_obs,
    "cluster": _cmd_cluster,
    "top": _cmd_top,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description="CRONUS reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        cmd = sub.add_parser(name)
        if name == "rodinia":
            cmd.add_argument("bench", nargs="*", help="bench names (default: all)")
        if name == "obs":
            cmd.add_argument(
                "--out", default="trace.json",
                help="Chrome trace-event JSON output path (default: trace.json)",
            )
            cmd.add_argument(
                "--detection", choices=("panic", "watchdog"), default="panic",
                help="failure-identification mode (default: panic)",
            )
            cmd.add_argument(
                "--disabled", dest="obs_enabled", action="store_false",
                help="run with observability off (inertness sanity check)",
            )
        if name == "cluster":
            cmd.add_argument(
                "--requests", type=int, default=3_000,
                help="trace length of the demo (default: 3000)",
            )
        if name == "top":
            cmd.add_argument(
                "--requests", type=int, default=3_000,
                help="trace length of the demo (default: 3000)",
            )
            cmd.add_argument(
                "--scrape-us", type=float, default=5_000.0,
                help="telemetry scrape interval in virtual us (default: 5000)",
            )
            cmd.add_argument(
                "--dump-traces", default=None, metavar="DIR",
                help="dump each crash alert's recovery trace JSON into DIR",
            )
    args = parser.parse_args(argv)

    import repro.workloads  # noqa: F401  (registers kernels)

    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
