"""Measurement hashing.

CRONUS's secure monitor measures mOS images and mOSes measure mEnclave
images (paper section IV-A).  A measurement is the SHA-256 digest of the
byte content; composite measurements hash the concatenation of
length-prefixed parts so that part boundaries cannot be forged.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

Measurable = Union[bytes, bytearray, memoryview, str]


def _to_bytes(data: Measurable) -> bytes:
    if isinstance(data, str):
        return data.encode("utf-8")
    return bytes(data)


def measure(data: Measurable) -> bytes:
    """SHA-256 measurement of a single blob (an image, a manifest, ...)."""
    return hashlib.sha256(_to_bytes(data)).digest()


def measure_many(parts: Iterable[Measurable]) -> bytes:
    """Composite measurement of an ordered sequence of parts.

    Each part is length-prefixed before hashing, so ``["ab", "c"]`` and
    ``["a", "bc"]`` measure differently.
    """
    h = hashlib.sha256()
    for part in parts:
        raw = _to_bytes(part)
        h.update(len(raw).to_bytes(8, "big"))
        h.update(raw)
    return h.digest()


def hexdigest(data: Measurable) -> str:
    """Hex form of :func:`measure`, as stored in manifest image tables."""
    return measure(data).hex()
