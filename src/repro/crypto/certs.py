"""Endorsement certificates.

Attestation in CRONUS ends with the client checking two endorsements
(paper section IV-A): the platform attestation key AtK must be endorsed by
the attestation service, and each accelerator's PubK_acc must be endorsed
by its hardware vendor.  A :class:`CertificateAuthority` models one such
endorsing party; clients are provisioned with the CA public keys (trust
anchors) out of band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import KeyPair, PublicKey, Signature, SignatureError, generate_keypair


class CertificateError(Exception):
    """Raised when an endorsement chain does not verify."""


@dataclass(frozen=True)
class Certificate:
    """An endorsement: ``issuer`` vouches that ``subject`` belongs to
    ``subject_name``."""

    subject_name: str
    subject: PublicKey
    issuer_name: str
    signature: Signature

    def payload(self) -> bytes:
        return b"|".join(
            [
                b"cert",
                self.subject_name.encode(),
                self.subject.fingerprint(),
                self.issuer_name.encode(),
            ]
        )


class CertificateAuthority:
    """An endorsing party: an accelerator vendor or the attestation service."""

    def __init__(self, name: str, seed: bytes) -> None:
        self.name = name
        self._keys: KeyPair = generate_keypair(seed, label=f"ca:{name}")

    @property
    def public(self) -> PublicKey:
        """The trust anchor distributed to clients."""
        return self._keys.public

    def endorse(self, subject_name: str, subject: PublicKey) -> Certificate:
        """Issue a certificate binding ``subject`` to ``subject_name``."""
        cert = Certificate(
            subject_name=subject_name,
            subject=subject,
            issuer_name=self.name,
            signature=Signature(0, 1),  # placeholder, replaced below
        )
        signature = self._keys.sign(cert.payload())
        return Certificate(
            subject_name=subject_name,
            subject=subject,
            issuer_name=self.name,
            signature=signature,
        )


def verify_certificate(cert: Certificate, anchor: PublicKey) -> None:
    """Check that ``cert`` was issued by the party holding ``anchor``."""
    try:
        anchor.verify(cert.payload(), cert.signature)
    except SignatureError as exc:
        raise CertificateError(
            f"certificate for {cert.subject_name!r} not endorsed by {cert.issuer_name!r}"
        ) from exc
