"""Schnorr key pairs and signatures.

These model every signing identity in CRONUS: the platform root of trust
(PubK/PvK), the derived attestation key (AtK), accelerator vendor keys
(PubK_acc/PvK_acc), and the SPM's local seal key.  Signing is deterministic
(the nonce is derived from the secret and the message) so simulations are
reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.group import G, P, Q, hash_to_int, int_to_bytes


class SignatureError(Exception):
    """Raised when signature verification fails."""


@dataclass(frozen=True)
class PublicKey:
    """A verifying key: the group element ``g^x``."""

    element: int
    label: str = ""

    def verify(self, message: bytes, signature: "Signature") -> None:
        """Raise :class:`SignatureError` unless ``signature`` is valid."""
        if not 0 < signature.s < Q:
            raise SignatureError("signature scalar out of range")
        r = pow(G, signature.s, P) * pow(self.element, Q - signature.e, P) % P
        e = hash_to_int(int_to_bytes(r), int_to_bytes(self.element), message)
        if e != signature.e:
            raise SignatureError(f"bad signature for key {self.label!r}")

    def is_valid(self, message: bytes, signature: "Signature") -> bool:
        """Boolean form of :meth:`verify`."""
        try:
            self.verify(message, signature)
        except SignatureError:
            return False
        return True

    def fingerprint(self) -> bytes:
        """Short stable identifier, used inside attestation reports."""
        return hashlib.sha256(int_to_bytes(self.element)).digest()[:16]


@dataclass(frozen=True)
class Signature:
    """A Schnorr signature (challenge ``e``, response ``s``)."""

    e: int
    s: int

    def to_bytes(self) -> bytes:
        return self.e.to_bytes(32, "big") + self.s.to_bytes(96, "big")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Signature":
        if len(raw) != 128:
            raise SignatureError(f"signature must be 128 bytes, got {len(raw)}")
        return cls(e=int.from_bytes(raw[:32], "big"), s=int.from_bytes(raw[32:], "big"))


@dataclass(frozen=True)
class KeyPair:
    """A signing identity; ``secret`` never leaves the owning component."""

    secret: int
    public: PublicKey

    def sign(self, message: bytes) -> Signature:
        """Deterministic Schnorr signature of ``message``."""
        k = hash_to_int(self.secret.to_bytes(96, "big"), message, b"nonce")
        if k == 0:
            k = 1
        r = pow(G, k, P)
        e = hash_to_int(int_to_bytes(r), int_to_bytes(self.public.element), message)
        s = (k + e * self.secret) % Q
        return Signature(e=e, s=s)


def generate_keypair(seed: bytes, label: str = "") -> KeyPair:
    """Derive a key pair deterministically from ``seed``.

    Hardware keys in CRONUS are burned into ROM at manufacture time; we
    model that by deriving them from a per-device seed, so the same
    simulated platform always owns the same identity.
    """
    secret = hash_to_int(hashlib.sha256(seed).digest(), b"keygen")
    if secret == 0:
        secret = 1
    public = PublicKey(element=pow(G, secret, P), label=label)
    return KeyPair(secret=secret, public=public)
