"""Authenticated sealing of data under a symmetric key.

Used for the SPM's local seal key (LSK) when producing local attestation
reports, and for user data handed to an mEnclave in encrypted form (the
application workflow in paper section III-D).  The cipher is a SHA-256
keystream with an HMAC tag: not production-grade, but tampering and wrong
keys genuinely fail to unseal.
"""

from __future__ import annotations

import hashlib
import hmac


class AuthTagError(Exception):
    """Raised when unsealing fails authentication."""


_TAG_LEN = 32


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest())
        counter += 1
    return b"".join(blocks)[:length]


def seal(key: bytes, plaintext: bytes, *, nonce: bytes = b"\x00" * 8) -> bytes:
    """Encrypt-then-MAC ``plaintext`` under ``key``."""
    stream = _keystream(key, nonce, len(plaintext))
    ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
    tag = hmac.new(key, nonce + ciphertext, hashlib.sha256).digest()
    return nonce + ciphertext + tag


def unseal(key: bytes, sealed: bytes) -> bytes:
    """Reverse :func:`seal`; raise :class:`AuthTagError` on any tampering."""
    if len(sealed) < 8 + _TAG_LEN:
        raise AuthTagError("sealed blob too short")
    nonce, body, tag = sealed[:8], sealed[8:-_TAG_LEN], sealed[-_TAG_LEN:]
    expect = hmac.new(key, nonce + body, hashlib.sha256).digest()
    if not hmac.compare_digest(expect, tag):
        raise AuthTagError("authentication tag mismatch")
    stream = _keystream(key, nonce, len(body))
    return bytes(a ^ b for a, b in zip(body, stream))
