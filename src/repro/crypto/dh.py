"""Diffie-Hellman key exchange.

CRONUS integrates DH into mEnclave creation so the creator and the created
mEnclave share ``secret_dhke`` (paper section IV-A): every message crossing
untrusted memory before the trusted channel exists is authenticated with
this secret, which also survives mOS substitution attacks — a substituted
mEnclave with the same eid does not know the secret.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.group import G, P, Q, hash_to_int, int_to_bytes


class DiffieHellman:
    """One party of a DH exchange over the shared MODP group."""

    def __init__(self, seed: bytes) -> None:
        self._secret = hash_to_int(seed, b"dh-secret")
        if self._secret == 0:
            self._secret = 1
        self.public = pow(G, self._secret, P)

    def shared_secret(self, peer_public: int) -> bytes:
        """Derive the 32-byte shared secret from the peer's public value."""
        if not 1 < peer_public < P - 1:
            raise ValueError("peer public value out of group range")
        shared = pow(peer_public, self._secret, P)
        return hashlib.sha256(b"dhke" + int_to_bytes(shared)).digest()


def mac(secret: bytes, message: bytes) -> bytes:
    """Authenticate ``message`` under a DH-derived secret (HMAC-SHA256)."""
    return hmac.new(secret, message, hashlib.sha256).digest()


def mac_valid(secret: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time check of :func:`mac`."""
    return hmac.compare_digest(mac(secret, message), tag)
