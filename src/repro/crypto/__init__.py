"""Cryptographic substrate for attestation, ownership and sealing.

CRONUS relies on a hardware root of trust (per-vendor keys burned into
ROM), Diffie-Hellman exchange during mEnclave creation, and signed
measurement reports.  We implement genuine public-key semantics with a
Schnorr signature scheme over a classic MODP group so that verification
really fails on tampered reports; group sizes are chosen for test speed,
not cryptographic strength (see DESIGN.md non-goals).
"""

from repro.crypto.hashing import measure, measure_many, hexdigest
from repro.crypto.keys import KeyPair, PublicKey, SignatureError, generate_keypair
from repro.crypto.dh import DiffieHellman
from repro.crypto.certs import Certificate, CertificateAuthority, CertificateError
from repro.crypto.seal import AuthTagError, seal, unseal

__all__ = [
    "measure",
    "measure_many",
    "hexdigest",
    "KeyPair",
    "PublicKey",
    "SignatureError",
    "generate_keypair",
    "DiffieHellman",
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "AuthTagError",
    "seal",
    "unseal",
]
