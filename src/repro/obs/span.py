"""Causal spans across mEnclave boundaries.

CRONUS assembles one logical computation out of many isolated mEnclaves
talking over sRPC, so no single component ever sees a whole request.  The
:class:`SpanRecorder` is the host-side collector every layer reports into:
the dispatcher opens a span when it routes a request, the sRPC channel
carries the caller's :class:`SpanContext` *in-band* inside the serialized
record, the consumer side opens a child span in the callee's partition, and
the SPM parents its proceed-trap recovery phases under whatever trace was
last active on the failed partition — so one request yields a single
parented span tree crossing partitions, including across a crash.

Determinism contract (see ``docs/observability.md``):

* Recording is **inert by default** (``enabled = False``) and recording
  never advances the simulated clock, so every simulated-time table is
  byte-identical with or without observability.
* All identifiers (trace ids, span ids, the global ``seq``) come from
  monotonic counters, never from wall clock or unseeded randomness, so two
  same-seed runs produce identical span trees and identical exported JSON.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs.flight import FlightRecorder


class SpanContext:
    """The in-band propagated identity of one span.

    ``seq`` is a recorder-global monotonic sequence number: spans sharing
    one simulated timestamp still have a stable total order.

    A hand-rolled slotted class rather than a frozen dataclass: one
    context is allocated per recorded span, so enabled-observability
    serving runs mint these by the million, and the frozen-dataclass
    ``object.__setattr__`` constructor is measurably slower on that
    path.  Identity comparison (the only one the recorder uses) is the
    semantics: no two live contexts ever share a ``seq``.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "seq")

    def __init__(
        self, trace_id: int, span_id: int, parent_id: Optional[int], seq: int
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.seq = seq

    def __repr__(self) -> str:
        return (
            f"SpanContext(trace_id={self.trace_id}, span_id={self.span_id}, "
            f"parent_id={self.parent_id}, seq={self.seq})"
        )

    def wire(self) -> Tuple[int, int]:
        """The (trace_id, span_id) pair carried inside sRPC records."""
        return (self.trace_id, self.span_id)


class Span:
    """One recorded operation: a named interval inside a trace."""

    __slots__ = (
        "context", "name", "category", "partition", "enclave",
        "start_us", "end_us", "attrs",
    )

    def __init__(
        self,
        context: SpanContext,
        name: str,
        category: str,
        partition: Optional[str],
        enclave: Optional[str],
        start_us: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.context = context
        self.name = name
        self.category = category
        self.partition = partition
        self.enclave = enclave
        self.start_us = start_us
        self.end_us: Optional[float] = None
        self.attrs = attrs

    @property
    def duration_us(self) -> float:
        return (self.end_us if self.end_us is not None else self.start_us) - self.start_us

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.context.trace_id}, "
            f"id={self.context.span_id}, parent={self.context.parent_id}, "
            f"[{self.start_us:.1f}, {self.end_us if self.end_us is not None else '...'}])"
        )


class _NullSpan:
    """Returned by a disabled recorder so call sites need no None checks."""

    __slots__ = ()
    context = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NO_SPAN"


NO_SPAN = _NullSpan()


class SpanRecorder:
    """Collects causal spans when enabled; free when disabled.

    The recorder keeps three structures:

    * the full span list (bounded by ``capacity``, with a ``dropped``
      counter like the event tracer's),
    * a per-partition map of the *last context active on that partition*
      (``note_partition``), which the SPM uses to parent recovery spans
      under the request that was running when the partition died,
    * a :class:`~repro.obs.flight.FlightRecorder` ring of the last N
      closed spans, dumped by the failover path when a partition crashes.
    """

    def __init__(
        self,
        clock,
        *,
        enabled: bool = False,
        capacity: int = 250_000,
        flight_capacity: int = 64,
    ) -> None:
        self._clock = clock
        self.enabled = enabled
        self.capacity = capacity
        self._spans: List[Span] = []
        self._stack: List[SpanContext] = []
        self._next_trace = 1
        self._next_span = 1
        self._seq = 0
        self.dropped = 0
        self.flight = FlightRecorder(flight_capacity)
        self._partition_last: Dict[str, SpanContext] = {}
        self.flight_dumps: List[Tuple[float, str, str, Tuple[Span, ...]]] = []
        # Tail-sampling support: a per-trace index so a sampler can size
        # and drop whole traces without scanning the span list, plus a
        # lazy-discard set compacted once half the list is dead weight.
        self._by_trace: Dict[int, List[Span]] = {}
        self._discarded: Set[int] = set()
        self._lazy = 0
        self.discarded_spans = 0
        self.discarded_traces = 0

    # -- context plumbing --------------------------------------------------
    def _resolve_parent(self, parent) -> Optional[SpanContext]:
        if parent is None:
            return self._stack[-1] if self._stack else None
        if isinstance(parent, Span):
            return parent.context
        if isinstance(parent, SpanContext):
            return parent
        if isinstance(parent, tuple):  # the in-band (trace_id, span_id) pair
            return SpanContext(trace_id=parent[0], span_id=parent[1], parent_id=None, seq=-1)
        return None

    def _make_context(self, parent: Optional[SpanContext]) -> SpanContext:
        self._seq += 1
        span_id = self._next_span
        self._next_span += 1
        if parent is None:
            trace_id = self._next_trace
            self._next_trace += 1
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return SpanContext(trace_id, span_id, parent_id, self._seq)

    def current(self) -> Optional[SpanContext]:
        """The innermost open span context, if any."""
        return self._stack[-1] if self._stack else None

    def attach(self, context: Optional[SpanContext]):
        """Context manager pushing a *foreign* context (e.g. a task's root
        span) so spans opened inside parent under it."""
        return _Attached(self, context)

    # -- recording ---------------------------------------------------------
    def begin(
        self,
        name: str,
        *,
        category: str = "",
        parent=None,
        partition: Optional[str] = None,
        enclave: Optional[str] = None,
        ts: Optional[float] = None,
        detached: bool = False,
        **attrs: Any,
    ):
        """Open a span and push it onto the context stack.

        Must be balanced by :meth:`end`.  Returns :data:`NO_SPAN` when
        disabled or over capacity — :meth:`end` accepts it silently.

        ``detached=True`` skips the stack push: for long-lived roots (a
        task that interleaves with others) whose children are adopted
        explicitly via :meth:`attach` instead of lexical nesting.
        """
        if not self.enabled:
            return NO_SPAN
        if len(self._spans) - self._lazy >= self.capacity:
            self.dropped += 1
            return NO_SPAN
        parent_ctx = self._resolve_parent(parent)
        if parent_ctx is not None and parent_ctx.trace_id in self._discarded:
            # A late child of a trace the sampler already dropped: admitting
            # it would silently resurrect ``_by_trace[tid]`` with spans that
            # ``_live()`` filters out but ``__len__``/capacity still count.
            self.discarded_spans += 1
            return NO_SPAN
        ctx = self._make_context(parent_ctx)
        # ``attrs`` is already a fresh per-call kwargs dict: no copy.
        span = Span(
            ctx, name, category, partition, enclave,
            self._clock.now if ts is None else ts, attrs,
        )
        self._spans.append(span)
        self._by_trace.setdefault(ctx.trace_id, []).append(span)
        if not detached:
            self._stack.append(ctx)
        if partition is not None:
            self._partition_last[partition] = ctx
        return span

    def end(self, span, *, ts: Optional[float] = None, **attrs: Any) -> None:
        """Close a span opened with :meth:`begin` (LIFO; tolerant of spans
        abandoned by an exception unwinding several frames at once)."""
        if span is NO_SPAN or not isinstance(span, Span):
            return
        if span.context in self._stack:
            # LIFO pop; a detached (never-pushed) span leaves the stack
            # alone, and spans abandoned by an exception unwinding several
            # frames at once are popped along the way.
            while self._stack:
                if self._stack.pop() is span.context:
                    break
        span.end_us = self._clock.now if ts is None else ts
        if attrs:
            span.attrs.update(attrs)
        self.flight.push(span)

    def record(
        self,
        name: str,
        *,
        start_us: float,
        end_us: float,
        category: str = "",
        parent=None,
        partition: Optional[str] = None,
        enclave: Optional[str] = None,
        **attrs: Any,
    ):
        """Record an already-finished interval (no stack interaction) —
        e.g. the consumer-timeline execution window of an sRPC record,
        whose start/end are known only after the submit."""
        if not self.enabled:
            return NO_SPAN
        if len(self._spans) - self._lazy >= self.capacity:
            self.dropped += 1
            return NO_SPAN
        parent_ctx = self._resolve_parent(parent)
        if parent_ctx is not None and parent_ctx.trace_id in self._discarded:
            # See begin(): late spans of a discarded trace are dropped.
            self.discarded_spans += 1
            return NO_SPAN
        ctx = self._make_context(parent_ctx)
        span = Span(ctx, name, category, partition, enclave, start_us, attrs)
        span.end_us = end_us
        self._spans.append(span)
        self._by_trace.setdefault(ctx.trace_id, []).append(span)
        if partition is not None:
            self._partition_last[partition] = ctx
        self.flight.push(span)
        return span

    def event(
        self,
        name: str,
        *,
        category: str = "",
        parent=None,
        partition: Optional[str] = None,
        enclave: Optional[str] = None,
        ts: Optional[float] = None,
        **attrs: Any,
    ):
        """A zero-duration span (instantaneous marker)."""
        when = self._clock.now if ts is None else ts
        return self.record(
            name, start_us=when, end_us=when, category=category, parent=parent,
            partition=partition, enclave=enclave, **attrs,
        )

    # -- partition activity (crash parenting) ------------------------------
    def note_partition(self, partition: str, context: Optional[SpanContext]) -> None:
        """Remember the last span context active on ``partition`` so a
        later crash can parent its recovery spans under that trace."""
        if context is not None:
            self._partition_last[partition] = context

    def partition_context(self, partition: str) -> Optional[SpanContext]:
        return self._partition_last.get(partition)

    def dump_flight(self, partition: str, reason: str) -> Tuple[Span, ...]:
        """Snapshot the flight ring into ``flight_dumps`` (the failover
        path calls this before scrubbing a crashed partition, so the last
        N spans leading up to the crash survive it)."""
        snapshot = self.flight.snapshot()
        if self.enabled:
            self.flight_dumps.append((self._clock.now, partition, reason, snapshot))
        return snapshot

    # -- tail sampling -----------------------------------------------------
    def trace_spans(self, trace_id: int) -> Tuple[Span, ...]:
        """All spans of one trace, in recording order (O(trace size))."""
        return tuple(self._by_trace.get(trace_id, ()))

    def discard_trace(self, trace_id: int) -> int:
        """Drop a whole trace (a tail sampler's negative retain decision).

        Removal from the flat span list is lazy: the trace is marked dead
        and physically compacted away only once discarded spans make up
        half the list, so per-request discards stay amortized O(1).
        While the mark is live, late spans arriving for the trace are
        dropped by :meth:`begin`/:meth:`record` (counted in
        ``discarded_spans``); after compaction clears the mark, a late
        span starts a fresh, fully-consistent ``_by_trace`` entry.
        Returns the number of spans discarded."""
        spans = self._by_trace.pop(trace_id, None)
        if spans is None:
            return 0
        count = len(spans)
        self._discarded.add(trace_id)
        self._lazy += count
        self.discarded_spans += count
        self.discarded_traces += 1
        # The absolute floor keeps steady-state discarding amortized O(1):
        # without it, once most spans are dead every discard re-triggers
        # an O(live) rebuild of a mostly-retained list.
        if self._lazy >= 512 and self._lazy * 2 >= len(self._spans):
            discarded = self._discarded
            self._spans = [s for s in self._spans if s.context.trace_id not in discarded]
            self._discarded = set()
            self._lazy = 0
        return count

    def _live(self) -> List[Span]:
        if not self._discarded:
            return self._spans
        discarded = self._discarded
        return [s for s in self._spans if s.context.trace_id not in discarded]

    # -- introspection -----------------------------------------------------
    def spans(
        self,
        *,
        trace_id: Optional[int] = None,
        category: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Tuple[Span, ...]:
        if trace_id is not None:
            out: List[Span] = list(self._by_trace.get(trace_id, ()))
        else:
            out = self._live()
        if category is not None:
            out = [s for s in out if s.category == category]
        if name is not None:
            out = [s for s in out if s.name == name]
        return tuple(out)

    def span_by_id(self, span_id: int) -> Optional[Span]:
        for span in self._live():
            if span.context.span_id == span_id:
                return span
        return None

    def trace_ids(self) -> Tuple[int, ...]:
        seen: List[int] = []
        for span in self._live():
            if span.context.trace_id not in seen:
                seen.append(span.context.trace_id)
        return tuple(seen)

    def clear(self) -> None:
        self._spans.clear()
        self._stack.clear()
        self._partition_last.clear()
        self.flight_dumps.clear()
        self.flight.clear()
        self.dropped = 0
        self._by_trace.clear()
        self._discarded.clear()
        self._lazy = 0
        self.discarded_spans = 0
        self.discarded_traces = 0

    def __len__(self) -> int:
        return len(self._spans) - self._lazy


class _Attached:
    """The ``attach`` context manager: push a foreign context, pop on exit."""

    __slots__ = ("_recorder", "_context", "_pushed")

    def __init__(self, recorder: SpanRecorder, context: Optional[SpanContext]) -> None:
        self._recorder = recorder
        self._context = context
        self._pushed = False

    def __enter__(self) -> "_Attached":
        if self._recorder.enabled and self._context is not None:
            self._recorder._stack.append(self._context)
            self._pushed = True
        return self

    def __exit__(self, *exc) -> None:
        if self._pushed:
            stack = self._recorder._stack
            if self._context in stack:
                # Tolerate spans abandoned by exceptions above us.
                while stack:
                    if stack.pop() is self._context:
                        break
