"""Exporters: Chrome trace-event JSON (Perfetto-loadable) and helpers.

The Chrome trace-event format is the least-common-denominator every trace
UI loads (chrome://tracing, Perfetto, speedscope).  The mapping is:

* ``pid`` = partition (one "process" per fault-isolation domain, so the
  Perfetto track grouping mirrors the S-EL2 partition boundaries),
* ``tid`` = enclave (or the span category for host-side spans),
* one ``"ph": "X"`` complete event per closed span, ``ts``/``dur`` in
  simulated microseconds,
* ``args`` carries the causal identity (``trace_id``, ``span_id``,
  ``parent_id``, ``seq``) plus the span's attributes.

:func:`validate_chrome_trace` is the schema gate CI runs via
``scripts/check_trace_schema.py``: required keys, well-formed ids,
parented spans whose parents exist (no dangling parents).
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Tuple

_HOST_PARTITION = "normal-world"


def _identity_maps(spans) -> Tuple[Dict[str, int], Dict[Tuple[str, str], int]]:
    """Stable integer pids per partition and tids per (partition, lane)."""
    partitions = sorted({s.partition or _HOST_PARTITION for s in spans})
    pids = {name: index + 1 for index, name in enumerate(partitions)}
    lanes = sorted({(s.partition or _HOST_PARTITION, _lane(s)) for s in spans})
    tids = {lane: index + 1 for index, lane in enumerate(lanes)}
    return pids, tids


def _lane(span) -> str:
    """The thread-level grouping: the enclave if known, else the category."""
    if span.enclave is not None:
        return str(span.enclave)
    return span.category or "host"


def chrome_trace(recorder, *, trace_id: Optional[int] = None) -> Dict[str, object]:
    """Render a recorder's spans as a Chrome trace-event JSON object."""
    spans = [s for s in recorder.spans(trace_id=trace_id) if s.end_us is not None]
    spans.sort(key=lambda s: (s.start_us, s.context.seq))
    pids, tids = _identity_maps(spans)
    events: List[Dict[str, object]] = []
    for name, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": name},
            }
        )
    for (partition, lane), tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name", "ph": "M",
                "pid": pids[partition], "tid": tid,
                "args": {"name": lane},
            }
        )
    for span in spans:
        partition = span.partition or _HOST_PARTITION
        args: Dict[str, object] = {
            "trace_id": span.context.trace_id,
            "span_id": span.context.span_id,
            "parent_id": span.context.parent_id,
            "seq": span.context.seq,
        }
        for key in sorted(span.attrs):
            args[key] = span.attrs[key]
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": round(span.start_us, 3),
                "dur": round(span.duration_us, 3),
                "pid": pids[partition],
                "tid": tids[(partition, _lane(span))],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def fleet_counter_track(
    scaling_events,
    initial_live,
    *,
    pid: int = 0,
    name: str = "fleet.live",
) -> List[Dict[str, object]]:
    """Render a serving run's fleet trajectory as Chrome counter events.

    ``scaling_events`` is :attr:`repro.serve.frontend.ServingReport.scaling_events`
    and ``initial_live`` its ``initial_live`` tuple.  Produces one
    ``"ph": "C"`` event per fleet-size change (Perfetto draws these as a
    stepped counter track), starting from the initial live count at t=0.
    Only completions move the counter: ``up`` (+1) and ``park`` (-1);
    ``boot``/``retire`` decisions are in-flight and don't change capacity.
    """
    live = len(initial_live)
    events: List[Dict[str, object]] = [
        {
            "name": name, "ph": "C", "pid": pid, "tid": 0,
            "ts": 0.0, "args": {"live": live},
        }
    ]
    for ts, action, _device in scaling_events:
        if action == "up":
            live += 1
        elif action == "park":
            live -= 1
        else:
            continue
        events.append(
            {
                "name": name, "ph": "C", "pid": pid, "tid": 0,
                "ts": round(ts, 3), "args": {"live": live},
            }
        )
    return events


def annotate_chrome_trace(data: Mapping[str, object], alerts) -> Dict[str, object]:
    """Annotate an exported trace with fired alerts as Chrome instant
    events (``"ph": "i"``, global scope) at the alert's virtual
    timestamp — this is the "recovery trace attached to alert" format
    the alert engine dumps.  Returns a new trace object; the input's
    event list is not mutated."""
    events = list(data.get("traceEvents", ()))
    for alert in alerts:
        events.append(
            {
                "name": f"alert:{alert.rule}",
                "cat": "alert",
                "ph": "i",
                "s": "g",
                "ts": round(alert.t_us, 3),
                "pid": 0,
                "tid": 0,
                "args": {
                    "alert_id": alert.alert_id,
                    "rule": alert.rule,
                    "severity": alert.severity,
                    "value": alert.value,
                    "threshold": alert.threshold,
                    "labels": {k: v for k, v in alert.labels},
                    "exemplar_trace_ids": list(alert.exemplar_trace_ids),
                },
            }
        )
    out = dict(data)
    out["traceEvents"] = events
    return out


def alert_annotations(data: Mapping[str, object]) -> List[Dict[str, object]]:
    """The alert instant events of an annotated trace, in file order."""
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return []
    return [
        e for e in events
        if isinstance(e, dict) and e.get("ph") == "i" and e.get("cat") == "alert"
    ]


def write_chrome_trace(recorder, path: str, *, trace_id: Optional[int] = None) -> str:
    """Write the Perfetto-loadable JSON to ``path``; returns the path."""
    data = chrome_trace(recorder, trace_id=trace_id)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


# -- schema validation (the CI gate) -----------------------------------------
_REQUIRED_EVENT_KEYS = ("name", "ph", "pid", "tid")
_REQUIRED_SPAN_ARGS = ("trace_id", "span_id", "parent_id", "seq")


def validate_chrome_trace(data: Mapping[str, object]) -> List[str]:
    """Validate an exported trace; returns a list of problems (empty = ok).

    Checks the acceptance gate's three properties: required keys on every
    event, span identity args on every ``X`` event, and every non-null
    ``parent_id`` resolving to a ``span_id`` in the *same trace* (no
    dangling parents).
    """
    problems: List[str] = []
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["top-level 'traceEvents' missing or not a list"]
    if not events:
        problems.append("trace contains no events")
    known: Dict[int, set] = {}
    span_events = []
    seen_seq = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event #{index} is not an object")
            continue
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                problems.append(f"event #{index} missing required key {key!r}")
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase == "C":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"event #{index}: 'ts' missing or non-numeric")
            cargs = event.get("args")
            if (
                not isinstance(cargs, dict)
                or not cargs
                or not all(isinstance(v, (int, float)) for v in cargs.values())
            ):
                problems.append(
                    f"event #{index}: counter 'args' must be a non-empty "
                    "mapping of numeric series"
                )
            continue
        if phase == "i":
            # Alert-annotation instant events (annotate_chrome_trace).
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"event #{index}: 'ts' missing or non-numeric")
            iargs = event.get("args")
            if (
                not isinstance(iargs, dict)
                or not isinstance(iargs.get("rule"), str)
                or not isinstance(iargs.get("severity"), str)
            ):
                problems.append(
                    f"event #{index}: instant-event 'args' must carry "
                    "string 'rule' and 'severity'"
                )
            continue
        if phase != "X":
            problems.append(f"event #{index}: unexpected phase {phase!r}")
            continue
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"event #{index}: 'ts' missing or non-numeric")
        if not isinstance(event.get("dur"), (int, float)) or event.get("dur", 0) < 0:
            problems.append(f"event #{index}: 'dur' missing or negative")
        args = event.get("args")
        if not isinstance(args, dict):
            problems.append(f"event #{index}: 'args' missing")
            continue
        missing = [k for k in _REQUIRED_SPAN_ARGS if k not in args]
        if missing:
            problems.append(f"event #{index}: args missing {missing}")
            continue
        span_events.append((index, args))
        seq = args["seq"]
        if seq in seen_seq:
            problems.append(f"event #{index}: duplicate seq {seq}")
        seen_seq.add(seq)
        known.setdefault(args["trace_id"], set()).add(args["span_id"])
    for index, args in span_events:
        parent = args["parent_id"]
        if parent is None:
            continue
        if parent not in known.get(args["trace_id"], ()):
            problems.append(
                f"event #{index}: dangling parent {parent} "
                f"(not a span_id in trace {args['trace_id']})"
            )
    return problems


# -- recovery-phase accounting ------------------------------------------------
#: Canonical phase order of the figure-9 proceed-trap recovery path.
RECOVERY_PHASES = ("detect", "trap", "scrub", "reload", "resubmit")


def recovery_phases(recorder, *, trace_id: Optional[int] = None) -> Dict[str, float]:
    """Per-phase simulated-microsecond totals from the recovery spans.

    Sums the durations of ``recovery.<phase>`` spans (category
    ``"recovery"``), optionally restricted to one trace.  Every canonical
    phase appears in the result (0.0 when it never ran), in the canonical
    detect → trap → scrub → reload → resubmit order.
    """
    totals = {phase: 0.0 for phase in RECOVERY_PHASES}
    for span in recorder.spans(trace_id=trace_id, category="recovery"):
        if span.end_us is None or not span.name.startswith("recovery."):
            continue
        phase = span.name.split(".", 1)[1]
        if phase in totals:
            totals[phase] += span.duration_us
    return totals
