"""The unified typed metrics registry.

Four layers of the stack grew their own ad-hoc counter dicts — the TLB's
``tlb_stats``, the ring's ``header_writebacks``, the channel's
``reclaim_errors``, the tracer's ``dropped``, the serving layer's batcher
and worker stats.  The :class:`MetricsRegistry` is the one
``platform.metrics`` handle that absorbs them all behind three typed
instruments:

* :class:`Counter` — monotonically increasing count.
* :class:`Gauge` — last-set value (also how absorbed ad-hoc dicts land).
* :class:`Histogram` — fixed bucket bounds chosen at creation, so the
  bucket layout (and therefore the snapshot text) is deterministic.

Zero-cost disabled path: a disabled registry hands out shared null
instruments whose mutators are no-ops, and hot paths guard on
``registry.enabled`` before even looking an instrument up.  The snapshot
is rendered with sorted keys and fixed formatting, so its sha256
fingerprint is byte-identical across same-seed runs.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Mapping, Optional, Tuple, Union

Number = Union[int, float]

#: Default latency-style bucket bounds (simulated microseconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 50_000.0, 100_000.0, 1_000_000.0,
)


class MetricError(Exception):
    """Registry misuse: type conflict or bad bucket bounds."""


class Counter:
    """A monotonically increasing counter."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter increment must be non-negative, got {amount}")
        self.value += amount

    def render(self) -> str:
        return _fmt(self.value)


class Gauge:
    """A last-value-wins instrument."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def render(self) -> str:
        return _fmt(self.value)


class Histogram:
    """Fixed-bound bucketed observations.

    ``bounds`` are the inclusive upper edges; one overflow bucket catches
    everything above the last bound.  Bounds are fixed at creation so the
    snapshot layout never depends on the data.

    With ``track_range=True`` the histogram additionally counts
    out-of-range observations explicitly — values above the last bound
    as ``overflow`` (the ``+Inf`` bucket) and negative values as
    ``underflow`` — instead of letting them vanish indistinguishably
    into the trailing/leading fixed buckets.  The extra fields appear in
    :meth:`render` and the registry snapshot *only* when the flag is on,
    so every pre-existing fingerprint stays byte-identical.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "total", "count", "track_range", "overflow", "underflow")

    def __init__(
        self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS, *, track_range: bool = False
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise MetricError(f"histogram bounds must be sorted and non-empty: {bounds!r}")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.track_range = track_range
        self.overflow = 0
        self.underflow = 0

    def observe(self, value: Number) -> None:
        if self.track_range:
            if value > self.bounds[-1]:
                self.overflow += 1
            elif value < 0:
                self.underflow += 1
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def render(self) -> str:
        base = f"count={self.count} sum={_fmt(round(self.total, 3))} mean={_fmt(round(self.mean, 3))}"
        if self.track_range:
            base += f" +Inf={self.overflow} underflow={self.underflow}"
        return base


class _NullInstrument:
    """Shared no-op instrument handed out by a disabled registry."""

    kind = "null"
    __slots__ = ()
    value = 0
    count = 0
    total = 0.0

    def inc(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass

    def render(self) -> str:  # pragma: no cover - never in a snapshot
        return "0"


_NULL = _NullInstrument()

Instrument = Union[Counter, Gauge, Histogram, _NullInstrument]


class MetricsRegistry:
    """All instruments, keyed by ``(layer, name)``.

    ``layer`` mirrors the ``counters_table`` convention (e.g.
    ``"stage2:part-gpu0"``, ``"srpc"``, ``"serve.batcher"``) so absorbed
    legacy dicts and new typed metrics render in one table.
    """

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = enabled
        self._metrics: Dict[Tuple[str, str], Instrument] = {}

    # -- instrument access -------------------------------------------------
    def _get(self, layer: str, name: str, factory, kind: str):
        if not self.enabled:
            return _NULL
        key = (layer, name)
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif metric.kind != kind:
            raise MetricError(
                f"metric {layer}/{name} already registered as {metric.kind}, not {kind}"
            )
        return metric

    def counter(self, layer: str, name: str) -> Counter:
        return self._get(layer, name, Counter, "counter")

    def gauge(self, layer: str, name: str) -> Gauge:
        return self._get(layer, name, Gauge, "gauge")

    def histogram(
        self,
        layer: str,
        name: str,
        *,
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
        track_range: bool = False,
    ) -> Histogram:
        return self._get(
            layer, name, lambda: Histogram(bounds, track_range=track_range), "histogram"
        )

    # -- legacy counter dicts ----------------------------------------------
    def absorb(self, layer: str, counters: Mapping[str, Number]) -> None:
        """Set one layer's ad-hoc counter dict into the registry as gauges
        (last absorption wins — call at snapshot points)."""
        if not self.enabled:
            return
        for name, value in counters.items():
            if isinstance(value, (int, float)):
                self.gauge(layer, name).set(value)

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A plain, deterministically ordered view of every instrument."""
        out: Dict[str, object] = {}
        for (layer, name) in sorted(self._metrics):
            metric = self._metrics[(layer, name)]
            key = f"{layer}/{name}"
            if isinstance(metric, Histogram):
                hist: Dict[str, object] = {
                    "count": metric.count,
                    "sum": round(metric.total, 6),
                    "buckets": list(metric.counts),
                    "bounds": list(metric.bounds),
                }
                if metric.track_range:
                    hist["overflow"] = metric.overflow
                    hist["underflow"] = metric.underflow
                out[key] = hist
            else:
                out[key] = metric.value
        return out

    def rows(self) -> List[List[str]]:
        """``(layer, metric, kind, value)`` rows, sorted — the registry's
        half of :func:`repro.metrics.report.counters_table`."""
        rows = []
        for (layer, name) in sorted(self._metrics):
            metric = self._metrics[(layer, name)]
            rows.append([layer, name, metric.kind, metric.render()])
        return rows

    def render(self) -> str:
        """Aligned text table of the full snapshot."""
        from repro.metrics.report import format_table

        return format_table(["layer", "metric", "kind", "value"], self.rows())

    def fingerprint(self) -> str:
        """sha256 of the rendered snapshot — byte-identical across
        same-seed runs (the acceptance gate for determinism)."""
        return hashlib.sha256(self.render().encode()).hexdigest()

    def get(self, layer: str, name: str) -> Optional[Instrument]:
        """Introspection: the live instrument, or None."""
        return self._metrics.get((layer, name))

    def clear(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)


def _fmt(value: Number) -> str:
    """Integers render bare; floats keep their repr (stable in py3)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
