"""The flight recorder: a bounded ring of recently closed spans.

A partition crash scrubs everything the partition owned — device state,
shared pages, the enclaves themselves — which is precisely when an operator
most wants to know what the partition was doing.  The flight recorder lives
*host-side* in the :class:`~repro.obs.span.SpanRecorder` (the model of the
SPM's own append-only log in secure memory, which a partition crash cannot
touch), so the last N spans always survive the crash; the failover path
snapshots them into ``SpanRecorder.flight_dumps`` before the scrub.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple


class FlightRecorder:
    """Keeps the last ``capacity`` closed spans, oldest evicted first."""

    __slots__ = ("capacity", "_ring", "pushed")

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"flight recorder capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: Deque = deque(maxlen=capacity)
        self.pushed = 0

    def push(self, span) -> None:
        self._ring.append(span)
        self.pushed += 1

    def snapshot(self) -> Tuple:
        """The ring's contents, oldest first (a stable copy)."""
        return tuple(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.pushed = 0

    def __len__(self) -> int:
        return len(self._ring)
