"""The virtual-time telemetry store: fixed-width ring-buffered windows.

PR 5's :class:`~repro.obs.metric.MetricsRegistry` is a *cumulative* view:
one number per instrument, rendered once at the end of a run.  Nobody can
see an SLO burning or a rejection spike *while the system runs*, because
a cumulative counter has no time axis.  The :class:`TimeSeriesStore` adds
that axis on the serving layers' **virtual** clock: a periodic scrape
event (driven by the engines' event loops, see
:mod:`repro.obs.telemetry`) snapshots every instrument into fixed-width
windows:

* **counters** → the per-window *delta* (a rate, in events per window),
  computed against a per-series cumulative cursor;
* **gauges** → the last written value (recorded only when it changes);
* **histograms** → the per-window bucket-count deltas, folded into
  nearest-rank window quantiles over the bucket upper edges
  (:func:`bucket_quantile`);
* **SLO accounts** → per-tenant offered/completed/rejected/expired
  deltas plus the *window p99* computed over only the latencies that
  completed inside the window (an append-only-list cursor per tenant).

Series are keyed by flat strings (``counter:serve/rejected``,
``slo:tenant-a.p99_us``) with an optional ``node=<id>|`` prefix so N
cluster nodes' registries land in one store without colliding.  Every
series is a ring of the last ``max_windows`` samples; rendering sorts
the keys and formats values with fixed precision, so the sha256
:meth:`~TimeSeriesStore.fingerprint` is byte-identical across same-seed
replays — the determinism gate the observability pipeline is held to.

Nothing here reads a wall clock or advances the simulated one: scrape
timestamps are handed in by the engines, and a run with no store
attached is byte-identical to one that never imported this module.
"""

from __future__ import annotations

import hashlib
from collections import deque
from fractions import Fraction
from typing import Deque, Dict, List, Optional, Sequence, Tuple

Number = float


def bucket_quantile(bounds: Sequence[float], counts: Sequence[int], pct: float) -> float:
    """Nearest-rank quantile from histogram bucket counts.

    ``bounds`` are inclusive upper edges; ``counts`` has one extra
    trailing overflow bucket (the :class:`~repro.obs.metric.Histogram`
    layout).  Returns the upper edge of the bucket holding the ranked
    observation — the overflow bucket reports the last finite edge, the
    best bound the fixed layout can state.  Exact-rank arithmetic mirrors
    :func:`repro.serve.slo.nearest_rank` (no float rank drift).
    """
    total = sum(counts)
    if total <= 0:
        return 0.0
    frac = Fraction(str(pct))
    rank = -((-total * frac.numerator) // (100 * frac.denominator))
    rank = max(1, min(total, rank))
    seen = 0
    for index, count in enumerate(counts):
        seen += count
        if seen >= rank:
            return float(bounds[min(index, len(bounds) - 1)])
    return float(bounds[-1])


def _fmt_value(value: Number) -> str:
    """Fixed sample formatting: integers bare, floats at 3 decimals."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.3f}"


class TimeSeriesStore:
    """Ring-buffered windowed series scraped from registries and SLOs."""

    def __init__(self, *, window_us: float = 50_000.0, max_windows: int = 120) -> None:
        if window_us <= 0:
            raise ValueError(f"window_us must be positive, got {window_us}")
        if max_windows < 2:
            raise ValueError(f"max_windows must be >= 2, got {max_windows}")
        self.window_us = float(window_us)
        self.max_windows = max_windows
        self._series: Dict[str, Deque[Tuple[float, Number]]] = {}
        self._key_log: List[str] = []
        """Keys in creation order (series are never removed), so the
        alert engine can match patterns incrementally against only the
        keys that appeared since its last evaluation."""
        self._cum: Dict[str, Number] = {}
        """Per-series cumulative cursor (counters, SLO tallies, extras)."""
        self._gauge_last: Dict[str, Number] = {}
        self._hist_cum: Dict[str, List[int]] = {}
        self._slo_pos: Dict[str, int] = {}
        """Per-tenant cursor into the append-only latency list."""
        self._slo_sorted: Dict[str, Tuple[int, List[str]]] = {}
        """Per-prefix (account count, sorted tenants) memo: trackers only
        ever add accounts, so the sort is valid until the count grows."""
        self.scrapes = 0
        self.last_scrape_us: Optional[float] = None

    # -- low-level recording -------------------------------------------------
    def record(self, t_us: float, key: str, value: Number) -> None:
        """Append one sample to ``key``'s ring (oldest window falls off)."""
        ring = self._series.get(key)
        if ring is None:
            ring = self._series[key] = deque(maxlen=self.max_windows)
            self._key_log.append(key)
        ring.append((t_us, value))

    def scrape_cumulative(self, t_us: float, key: str, value: Number) -> None:
        """Record the per-window delta of an externally tracked cumulative
        total (e.g. a migration manager's scrub-violation count)."""
        last = self._cum.get(key, 0)
        self._cum[key] = value
        delta = value - last
        if delta:
            self.record(t_us, key, delta)

    # -- scraping ------------------------------------------------------------
    def scrape_registry(self, t_us: float, registry, *, node: Optional[str] = None) -> None:
        """One windowed snapshot of every instrument in ``registry``."""
        prefix = f"node={node}|" if node is not None else ""
        metrics = registry._metrics
        for layer, name in sorted(metrics):
            metric = metrics[(layer, name)]
            kind = metric.kind
            if kind == "counter":
                self.scrape_cumulative(
                    t_us, f"{prefix}counter:{layer}/{name}", metric.value
                )
            elif kind == "gauge":
                key = f"{prefix}gauge:{layer}/{name}"
                value = metric.value
                if self._gauge_last.get(key) != value:
                    self._gauge_last[key] = value
                    self.record(t_us, key, value)
            elif kind == "histogram":
                base = f"{prefix}hist:{layer}/{name}"
                last = self._hist_cum.get(base)
                current = list(metric.counts)
                self._hist_cum[base] = current
                if last is None:
                    delta = current
                else:
                    delta = [c - p for c, p in zip(current, last)]
                count = sum(delta)
                if count:
                    self.record(t_us, f"{base}.count", count)
                    self.record(
                        t_us, f"{base}.p50", bucket_quantile(metric.bounds, delta, 50)
                    )
                    self.record(
                        t_us, f"{base}.p99", bucket_quantile(metric.bounds, delta, 99)
                    )

    def scrape_slo(self, t_us: float, tracker, *, node: Optional[str] = None) -> None:
        """Per-tenant windowed SLO series from an
        :class:`~repro.serve.slo.SLOTracker`: tally deltas plus the p99
        over only the latencies recorded since the previous scrape."""
        from repro.serve.slo import nearest_rank

        prefix = f"node={node}|" if node is not None else ""
        accounts = tracker._accounts
        cached = self._slo_sorted.get(prefix)
        if cached is None or cached[0] != len(accounts):
            cached = (len(accounts), sorted(accounts))
            self._slo_sorted[prefix] = cached
        for tenant in cached[1]:
            acct = accounts[tenant]
            base = f"{prefix}slo:{tenant}"
            self.scrape_cumulative(t_us, f"{base}.offered", acct.offered)
            self.scrape_cumulative(t_us, f"{base}.completed", acct.completed)
            self.scrape_cumulative(t_us, f"{base}.rejected", acct.rejected_total)
            self.scrape_cumulative(t_us, f"{base}.expired", acct.expired)
            pos = self._slo_pos.get(base, 0)
            latencies = acct.latencies
            if len(latencies) > pos:
                window = sorted(latencies[pos:])
                self._slo_pos[base] = len(latencies)
                self.record(t_us, f"{base}.p99_us", nearest_rank(window, 99))

    def note_scrape(self, t_us: float) -> None:
        self.scrapes += 1
        self.last_scrape_us = t_us

    # -- queries -------------------------------------------------------------
    def keys(self) -> List[str]:
        return sorted(self._series)

    def key_count(self) -> int:
        """O(1) series count (the alert engine's match-memo guard)."""
        return len(self._series)

    def keys_since(self, start: int) -> List[str]:
        """Keys created at log index >= ``start``, in creation order —
        the alert engine's incremental pattern-match feed."""
        return self._key_log[start:]

    def series(self, key: str) -> Tuple[Tuple[float, Number], ...]:
        return tuple(self._series.get(key, ()))

    def latest(self, key: str) -> Optional[Number]:
        ring = self._series.get(key)
        return ring[-1][1] if ring else None

    def total(self, key: str) -> Number:
        """The cumulative cursor value (counters and SLO tallies)."""
        return self._cum.get(key, 0)

    def window_sum(self, key: str, since_us: float) -> Number:
        """Sum of samples strictly after ``since_us`` (delta series)."""
        ring = self._series.get(key)
        if not ring:
            return 0
        return sum(v for t, v in ring if t > since_us)

    def window_max(self, key: str, since_us: float) -> Number:
        """Max sample strictly after ``since_us`` (0 when none)."""
        ring = self._series.get(key)
        if not ring:
            return 0
        values = [v for t, v in ring if t > since_us]
        return max(values) if values else 0

    def window_max_sticky(self, key: str, since_us: float) -> Number:
        """Max sample strictly after ``since_us``; when no sample falls
        inside the window, the most recent sample at-or-before it.

        This is the last-write-carried-forward read for gauge series,
        which record only on change: a gauge stuck at a value since
        before the window still *is* that value throughout it, so
        alert rules over gauges keep firing past the window width."""
        ring = self._series.get(key)
        if not ring:
            return 0
        best = carry = None
        for t, v in ring:
            if t > since_us:
                best = v if best is None else max(best, v)
            else:
                carry = v
        if best is not None:
            return best
        return carry if carry is not None else 0

    # -- deterministic export ------------------------------------------------
    def render(self) -> str:
        """All retained windows, sorted keys, fixed formatting."""
        lines = [
            f"window_us={self.window_us:.3f} scrapes={self.scrapes} "
            f"series={len(self._series)}"
        ]
        for key in self.keys():
            samples = " ".join(
                f"{t:.3f}:{_fmt_value(v)}" for t, v in self._series[key]
            )
            lines.append(f"{key} {samples}")
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """sha256 of the rendered store — the replay acceptance gate."""
        return hashlib.sha256(self.render().encode()).hexdigest()

    def __len__(self) -> int:
        return len(self._series)
