"""``repro.obs``: cross-mEnclave causal tracing and the unified metrics
registry.

Three pieces (see ``docs/observability.md``):

* :class:`~repro.obs.span.SpanRecorder` (``platform.obs``) — causal spans
  with in-band context propagation through sRPC, parented across partition
  boundaries and across crash-and-failover.
* :class:`~repro.obs.metric.MetricsRegistry` (``platform.metrics``) —
  typed Counter/Gauge/Histogram instruments with a deterministic
  snapshot/fingerprint, absorbing the per-layer ad-hoc counter dicts.
* Exporters — Chrome trace-event JSON (Perfetto), the plain-text span
  tree (:func:`repro.metrics.report.span_tree`), and the recovery-phase
  breakdown of the figure-9 path.

Everything is inert by default: with ``enabled = False`` no span or metric
is recorded and no simulated time is ever charged, so all existing
simulated-time tables stay byte-identical.
"""

from repro.obs.export import (
    RECOVERY_PHASES,
    alert_annotations,
    annotate_chrome_trace,
    chrome_trace,
    fleet_counter_track,
    recovery_phases,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.flight import FlightRecorder
from repro.obs.metric import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.alerts import PAGE, TICKET, Alert, AlertEngine, AlertRule, default_rules
from repro.obs.sampling import TailSampler
from repro.obs.span import NO_SPAN, Span, SpanContext, SpanRecorder
from repro.obs.telemetry import TelemetryPipeline, TelemetrySource
from repro.obs.timeseries import TimeSeriesStore, bucket_quantile

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "PAGE",
    "TICKET",
    "default_rules",
    "TailSampler",
    "TelemetryPipeline",
    "TelemetrySource",
    "TimeSeriesStore",
    "bucket_quantile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "NO_SPAN",
    "chrome_trace",
    "annotate_chrome_trace",
    "alert_annotations",
    "fleet_counter_track",
    "write_chrome_trace",
    "validate_chrome_trace",
    "recovery_phases",
    "RECOVERY_PHASES",
    "collect_system_metrics",
    "enable",
]


def enable(system) -> None:
    """Turn on both spans and metrics for a booted system."""
    system.platform.obs.enabled = True
    system.platform.metrics.enabled = True


class _NodePrefixed:
    """A registry view that prefixes every instrument layer with
    ``node=<id>:`` — the cluster-merge fix: absorbing N nodes' systems
    into one registry used to silently collide (last absorb wins on
    same-named gauges), because every node calls its partitions
    ``part-gpu0`` and its layers ``spm``/``tracer``.  The view forwards
    to the real registry, so ``absorb_into`` implementations work
    unchanged."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry", node: str) -> None:
        self._registry = registry
        self._prefix = f"node={node}:"

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    def counter(self, layer, name):
        return self._registry.counter(self._prefix + layer, name)

    def gauge(self, layer, name):
        return self._registry.gauge(self._prefix + layer, name)

    def histogram(self, layer, name, **kwargs):
        return self._registry.histogram(self._prefix + layer, name, **kwargs)

    def absorb(self, layer, counters) -> None:
        self._registry.absorb(self._prefix + layer, counters)


def collect_system_metrics(system, *, node=None, into=None) -> "MetricsRegistry":
    """Absorb every layer's counters into the system's registry.

    One call replaces the hand-rolled dict merging the wall-clock bench
    used to do: stage-2 and SMMU TLB stats, partition fast/slow access
    lanes, device counters, tracer and span-recorder health, and SPM grant
    bookkeeping all land under one ``platform.metrics`` handle.  Returns
    the registry for chaining (``collect_system_metrics(sys).fingerprint()``).

    On the cluster path pass ``node=<id>`` (and usually ``into=`` a shared
    registry): every instrument layer gets a ``node=<id>:`` prefix so
    merged registries from N nodes no longer collide.
    """
    platform = system.platform
    registry = platform.metrics if into is None else into
    if not registry.enabled:
        return registry
    target = _NodePrefixed(registry, node) if node is not None else registry
    spm = getattr(system, "spm", None)
    if spm is not None:
        for partition in spm.partitions():
            partition.stage2.absorb_into(target)
            target.absorb(
                f"partition:{partition.name}",
                {
                    "fast_accesses": partition.fast_accesses,
                    "slow_accesses": partition.slow_accesses,
                    "restarts": partition.restarts,
                },
            )
            smmu_table = platform.smmu.table_for(partition.device.name)
            smmu_table.absorb_into(target)
        target.absorb(
            "spm",
            {
                "grants_total": len(spm._grants),
                "grants_active": sum(1 for g in spm._grants if g.active),
            },
        )
    for device in platform.devices():
        layer = f"device:{device.name}"
        for attr in ("kernels_launched", "bytes_in_use", "programs_run", "calls_executed"):
            value = getattr(device, attr, None)
            if isinstance(value, (int, float)):
                target.gauge(layer, attr).set(value)
    target.absorb(
        "tracer", {"events": len(platform.tracer), "dropped": platform.tracer.dropped}
    )
    target.absorb(
        "obs", {"spans": len(platform.obs), "dropped": platform.obs.dropped}
    )
    return registry
