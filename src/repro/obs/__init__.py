"""``repro.obs``: cross-mEnclave causal tracing and the unified metrics
registry.

Three pieces (see ``docs/observability.md``):

* :class:`~repro.obs.span.SpanRecorder` (``platform.obs``) — causal spans
  with in-band context propagation through sRPC, parented across partition
  boundaries and across crash-and-failover.
* :class:`~repro.obs.metric.MetricsRegistry` (``platform.metrics``) —
  typed Counter/Gauge/Histogram instruments with a deterministic
  snapshot/fingerprint, absorbing the per-layer ad-hoc counter dicts.
* Exporters — Chrome trace-event JSON (Perfetto), the plain-text span
  tree (:func:`repro.metrics.report.span_tree`), and the recovery-phase
  breakdown of the figure-9 path.

Everything is inert by default: with ``enabled = False`` no span or metric
is recorded and no simulated time is ever charged, so all existing
simulated-time tables stay byte-identical.
"""

from repro.obs.export import (
    RECOVERY_PHASES,
    chrome_trace,
    fleet_counter_track,
    recovery_phases,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.flight import FlightRecorder
from repro.obs.metric import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.span import NO_SPAN, Span, SpanContext, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "NO_SPAN",
    "chrome_trace",
    "fleet_counter_track",
    "write_chrome_trace",
    "validate_chrome_trace",
    "recovery_phases",
    "RECOVERY_PHASES",
    "collect_system_metrics",
    "enable",
]


def enable(system) -> None:
    """Turn on both spans and metrics for a booted system."""
    system.platform.obs.enabled = True
    system.platform.metrics.enabled = True


def collect_system_metrics(system) -> "MetricsRegistry":
    """Absorb every layer's counters into the system's registry.

    One call replaces the hand-rolled dict merging the wall-clock bench
    used to do: stage-2 and SMMU TLB stats, partition fast/slow access
    lanes, device counters, tracer and span-recorder health, and SPM grant
    bookkeeping all land under one ``platform.metrics`` handle.  Returns
    the registry for chaining (``collect_system_metrics(sys).fingerprint()``).
    """
    platform = system.platform
    registry = platform.metrics
    if not registry.enabled:
        return registry
    spm = getattr(system, "spm", None)
    if spm is not None:
        for partition in spm.partitions():
            partition.stage2.absorb_into(registry)
            registry.absorb(
                f"partition:{partition.name}",
                {
                    "fast_accesses": partition.fast_accesses,
                    "slow_accesses": partition.slow_accesses,
                    "restarts": partition.restarts,
                },
            )
            smmu_table = platform.smmu.table_for(partition.device.name)
            smmu_table.absorb_into(registry)
        registry.absorb(
            "spm",
            {
                "grants_total": len(spm._grants),
                "grants_active": sum(1 for g in spm._grants if g.active),
            },
        )
    for device in platform.devices():
        layer = f"device:{device.name}"
        for attr in ("kernels_launched", "bytes_in_use", "programs_run", "calls_executed"):
            value = getattr(device, attr, None)
            if isinstance(value, (int, float)):
                registry.gauge(layer, attr).set(value)
    registry.absorb(
        "tracer", {"events": len(platform.tracer), "dropped": platform.tracer.dropped}
    )
    registry.absorb(
        "obs", {"spans": len(platform.obs), "dropped": platform.obs.dropped}
    )
    return registry
