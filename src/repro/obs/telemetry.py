"""The telemetry pipeline: store + alert engine + tail samplers, wired
into the serving engines' virtual-time event loops.

One :class:`TelemetryPipeline` serves a whole deployment — a single
:class:`~repro.serve.frontend.ServingSystem`, an
:class:`~repro.serve.llm.LLMEngine`, or an N-node
:class:`~repro.cluster.serve.ClusterServingSystem`.  Each underlying
CRONUS system is :meth:`~TelemetryPipeline.attach`-ed (optionally under
a ``node=<id>`` label), which flips its span recorder and metrics
registry on and pairs the recorder with a
:class:`~repro.obs.sampling.TailSampler`.  The engine that owns the
event loop then:

* calls :meth:`~TelemetryPipeline.scrape` as the **last phase** of any
  instant at which the scrape timer is due — scrapes are ordinary
  periodic events in the deterministic per-instant phase order, so a
  replay scrapes the exact same state at the exact same virtual times
  and the store/alert fingerprints are byte-identical;
* reports request completions to its :class:`TelemetrySource` so the
  tail sampler can make retain decisions;
* reports node deaths via :meth:`~TelemetryPipeline.node_killed`, which
  captures the corpse's recovery spans as a Chrome trace and attaches
  it to the node-death page fired at the next scrape.

Scrape *scheduling* follows one rule everywhere: a scrape deadline only
wins the next-event race when some real event exists after it — the
pipeline never extends a run's makespan, it only subdivides waits that
were going to happen anyway (a final scrape after the loop drains the
tail).  With no pipeline attached every engine takes the exact code
paths it took before this module existed.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.obs.alerts import AlertEngine, AlertRule, default_rules
from repro.obs.export import chrome_trace
from repro.obs.sampling import TailSampler
from repro.obs.timeseries import TimeSeriesStore

_SLO_FIELDS = ("offered", "completed", "rejected", "expired", "p99_us")


class _OrphanSpan:
    """A span proxy re-rooted at its trace: used when a captured slice
    contains a span whose parent was still open at capture time (the
    request was in flight when the node died), so the exported trace
    never carries a dangling parent reference."""

    __slots__ = ("_span", "context")

    def __init__(self, span) -> None:
        from repro.obs.span import SpanContext

        self._span = span
        ctx = span.context
        self.context = SpanContext(ctx.trace_id, ctx.span_id, None, ctx.seq)

    def __getattr__(self, name):
        return getattr(self._span, name)


class _TraceSlice:
    """A minimal recorder view over a fixed span list, so
    :func:`~repro.obs.export.chrome_trace` can render a subset.
    Spans whose parents did not make the slice are re-rooted."""

    __slots__ = ("_spans",)

    def __init__(self, spans) -> None:
        spans = list(spans)
        present = {s.context.span_id for s in spans}
        self._spans = [
            s
            if s.context.parent_id is None or s.context.parent_id in present
            else _OrphanSpan(s)
            for s in spans
        ]

    def spans(self, *, trace_id=None):
        if trace_id is None:
            return tuple(self._spans)
        return tuple(s for s in self._spans if s.context.trace_id == trace_id)


class TelemetrySource:
    """One attached system's handle into the pipeline: the engines call
    this on their completion paths (never on the scrape path)."""

    __slots__ = ("node", "system", "registry", "recorder", "slo", "sampler", "extra")

    def __init__(self, *, node, system, registry, recorder, slo, sampler, extra) -> None:
        self.node = node
        self.system = system
        self.registry = registry
        self.recorder = recorder
        self.slo = slo
        self.sampler = sampler
        self.extra = extra

    def request_done(
        self,
        trace_id: Optional[int],
        *,
        latency_us: float,
        outcome: str,
        tenant: Optional[str] = None,
    ) -> None:
        """A request's trace completed: tail-sample it."""
        if self.sampler is not None:
            self.sampler.observe(
                trace_id, latency_us=latency_us, outcome=outcome, tenant=tenant
            )

    def note_recovery(self, trace_id: Optional[int]) -> None:
        """This trace crossed a crash recovery: always retain it."""
        if self.sampler is not None:
            self.sampler.note_recovery(trace_id)


class TelemetryPipeline:
    """Deployment-wide virtual-time telemetry: see the module docstring."""

    def __init__(
        self,
        *,
        scrape_interval_us: float = 50_000.0,
        max_windows: int = 120,
        rules: Optional[Sequence[AlertRule]] = None,
        p99_slo_us: float = 200_000.0,
        rejection_ratio: float = 0.5,
        slow_trace_us: Optional[float] = None,
        trace_byte_budget: int = 512 * 1024,
    ) -> None:
        if scrape_interval_us <= 0:
            raise ValueError(f"scrape_interval_us must be positive, got {scrape_interval_us}")
        self.scrape_interval_us = float(scrape_interval_us)
        self.store = TimeSeriesStore(
            window_us=scrape_interval_us, max_windows=max_windows
        )
        if rules is None:
            rules = default_rules(
                scrape_interval_us=self.scrape_interval_us,
                p99_slo_us=p99_slo_us,
                rejection_ratio=rejection_ratio,
            )
        self.alerts = AlertEngine(self.store, rules, exemplar_source=self._exemplars)
        self.slow_trace_us = float(
            slow_trace_us if slow_trace_us is not None else p99_slo_us
        )
        self.trace_byte_budget = int(trace_byte_budget)
        self.sources: List[TelemetrySource] = []
        self._extras: List[Callable[[], Dict[str, float]]] = []
        self._by_node: Dict[str, TelemetrySource] = {}
        self._dead: Set[str] = set()
        self._alive_last: Dict[str, float] = {}
        self._last_scrape_us: Optional[float] = None

    # -- wiring ---------------------------------------------------------------
    def attach(
        self,
        system,
        *,
        slo=None,
        node: Optional[str] = None,
        extra: Optional[Callable[[], Dict[str, float]]] = None,
        sample: bool = True,
    ) -> TelemetrySource:
        """Attach one CRONUS system (optionally labelled ``node=<id>``):
        enables its spans + metrics and pairs it with a tail sampler.
        ``extra`` is a callable returning cumulative counters scraped
        alongside the registry (e.g. an engine's scrub-violation count).
        """
        platform = system.platform
        platform.obs.enabled = True
        platform.metrics.enabled = True
        sampler = (
            TailSampler(
                platform.obs,
                slow_us=self.slow_trace_us,
                byte_budget=self.trace_byte_budget,
            )
            if sample
            else None
        )
        source = TelemetrySource(
            node=node,
            system=system,
            registry=platform.metrics,
            recorder=platform.obs,
            slo=slo,
            sampler=sampler,
            extra=extra,
        )
        self.sources.append(source)
        if node is not None:
            self._by_node[node] = source
        return source

    def add_extra(self, extra: Callable[[], Dict[str, float]]) -> None:
        """Register a deployment-level cumulative-counter callable,
        scraped with no node prefix (e.g. the cluster's migration-audit
        counters, which belong to no single node)."""
        self._extras.append(extra)

    # -- the scrape event ------------------------------------------------------
    def scrape(self, t_us: float) -> None:
        """One scrape of every attached source at virtual time ``t_us``,
        followed by one alert evaluation.  Idempotent per instant."""
        if self._last_scrape_us == t_us:
            return
        self._last_scrape_us = t_us
        from repro.obs import collect_system_metrics

        for source in self.sources:
            collect_system_metrics(source.system)
            self.store.scrape_registry(t_us, source.registry, node=source.node)
            if source.slo is not None:
                self.store.scrape_slo(t_us, source.slo, node=source.node)
            prefix = f"node={source.node}|" if source.node is not None else ""
            if source.extra is not None:
                for name, value in sorted(source.extra().items()):
                    self.store.scrape_cumulative(t_us, f"{prefix}counter:{name}", value)
            if source.node is not None:
                key = f"{prefix}gauge:node/alive"
                alive = 0.0 if source.node in self._dead else 1.0
                if self._alive_last.get(key) != alive:
                    self._alive_last[key] = alive
                    self.store.record(t_us, key, alive)
        for extra in self._extras:
            for name, value in sorted(extra().items()):
                self.store.scrape_cumulative(t_us, f"counter:{name}", value)
        self.store.note_scrape(t_us)
        self.alerts.evaluate(t_us)

    # -- out-of-band signals ---------------------------------------------------
    def node_killed(self, t_us: float, node: str) -> None:
        """A node died: capture its recovery spans as a Chrome trace,
        pin those traces in the tail sampler, and queue the node-death
        page (fires at the next scrape — within one interval)."""
        self._dead.add(node)
        source = self._by_node.get(node)
        trace = None
        if source is not None and source.recorder.enabled:
            trace_ids: List[int] = []
            for span in source.recorder.spans(category="recovery"):
                if span.context.trace_id not in trace_ids:
                    trace_ids.append(span.context.trace_id)
            if trace_ids:
                spans = [
                    span
                    for tid in trace_ids
                    for span in source.recorder.trace_spans(tid)
                    if span.end_us is not None
                ]
                trace = chrome_trace(_TraceSlice(spans))
                if source.sampler is not None:
                    for tid in trace_ids:
                        source.sampler.note_recovery(tid)
        self.alerts.node_killed(t_us, node, recovery_trace=trace)

    def _exemplars(self, rule, labels) -> Tuple[int, ...]:
        """Exemplar trace ids for a firing alert, resolved through the
        attached samplers (attach order — deterministic).  Alerts over a
        node-prefixed series carry a ``node`` label; their exemplars
        come from that node's sampler only."""
        label_map = dict(labels)
        tenant = label_map.get("tenant")
        node_source = self._by_node.get(label_map.get("node"))
        sources = [node_source] if node_source is not None else self.sources
        out: List[int] = []
        for source in sources:
            if source.sampler is None:
                continue
            if tenant is not None:
                out.extend(source.sampler.tenant_exemplars(tenant))
            else:
                out.extend(source.sampler.top_exemplars(2))
        return tuple(out[:4])

    # -- fingerprints ----------------------------------------------------------
    def store_fingerprint(self) -> str:
        return self.store.fingerprint()

    def alert_fingerprint(self) -> str:
        return self.alerts.fingerprint()

    def fingerprint(self) -> str:
        """One combined replay fingerprint over store + alerts."""
        combined = self.store_fingerprint() + self.alert_fingerprint()
        return hashlib.sha256(combined.encode()).hexdigest()

    def sampler_stats(self) -> Dict[str, int]:
        """Merged tail-sampler counters across every attached source."""
        totals: Dict[str, int] = {}
        for source in self.sources:
            if source.sampler is None:
                continue
            for key, value in source.sampler.stats().items():
                if key == "byte_budget":
                    totals[key] = max(totals.get(key, 0), value)
                else:
                    totals[key] = totals.get(key, 0) + value
        return totals

    # -- ``python -m repro top`` tables ---------------------------------------
    def _slo_agg(self):
        """{(node, tenant): {field: value}} parsed from the store keys."""
        agg: Dict[Tuple[Optional[str], str], Dict[str, float]] = {}
        for key in self.store.keys():
            bare, node = key, None
            if key.startswith("node="):
                node_part, bare = key.split("|", 1)
                node = node_part[len("node="):]
            if not bare.startswith("slo:"):
                continue
            tenant, _, field = bare[len("slo:"):].rpartition(".")
            if field not in _SLO_FIELDS or not tenant:
                continue
            entry = agg.setdefault((node, tenant), {})
            if field == "p99_us":
                entry[field] = float(self.store.latest(key) or 0.0)
            else:
                entry[field] = float(self.store.total(key))
        return agg

    def node_table(self) -> str:
        """Per-node liveness + SLO totals + worst last-window tenant p99."""
        from repro.metrics.report import format_table

        agg = self._slo_agg()
        nodes = sorted({node for node, _ in agg if node is not None})
        if not nodes:
            nodes = [source.node for source in self.sources if source.node is not None]
        rows = []
        row_nodes = nodes if nodes else [None]
        for node in row_nodes:
            fields = {f: 0.0 for f in _SLO_FIELDS[:-1]}
            worst_p99 = 0.0
            for (n, _tenant), entry in sorted(agg.items(), key=lambda kv: str(kv[0])):
                if n != node:
                    continue
                for f in fields:
                    fields[f] += entry.get(f, 0.0)
                worst_p99 = max(worst_p99, entry.get("p99_us", 0.0))
            rows.append([
                node if node is not None else "-",
                "DOWN" if node in self._dead else "up",
                int(fields["offered"]),
                int(fields["completed"]),
                int(fields["rejected"]),
                int(fields["expired"]),
                f"{worst_p99:.1f}",
            ])
        return format_table(
            ["node", "state", "offered", "completed", "rejected", "expired", "p99_us(w)"],
            rows,
        )

    def tenant_table(self, limit: int = 12) -> str:
        """Per-tenant totals merged across nodes, busiest first."""
        from repro.metrics.report import format_table

        agg = self._slo_agg()
        merged: Dict[str, Dict[str, float]] = {}
        for (_node, tenant), entry in sorted(agg.items(), key=lambda kv: str(kv[0])):
            out = merged.setdefault(tenant, {f: 0.0 for f in _SLO_FIELDS})
            for f in _SLO_FIELDS[:-1]:
                out[f] += entry.get(f, 0.0)
            out["p99_us"] = max(out["p99_us"], entry.get("p99_us", 0.0))
        order = sorted(merged.items(), key=lambda kv: (-kv[1]["offered"], kv[0]))
        rows = [
            [
                tenant,
                int(e["offered"]),
                int(e["completed"]),
                int(e["rejected"]),
                int(e["expired"]),
                f"{e['p99_us']:.1f}",
            ]
            for tenant, e in order[:limit]
        ]
        return format_table(
            ["tenant", "offered", "completed", "rejected", "expired", "p99_us(w)"], rows
        )

    def alert_table(self) -> str:
        from repro.metrics.report import format_table

        rows = []
        for alert in self.alerts.alerts:
            labels = ",".join(f"{k}={v}" for k, v in alert.labels) or "-"
            rows.append([
                alert.alert_id,
                f"{alert.t_us / 1e3:.1f}",
                alert.severity,
                alert.rule,
                labels,
                f"{alert.value:.1f}/{alert.threshold:.1f}",
                len(alert.exemplar_trace_ids),
                "yes" if alert.recovery_trace is not None else "-",
            ])
        return format_table(
            ["id", "t_ms", "sev", "rule", "labels", "value/thr", "exemplars", "trace"],
            rows,
        )
