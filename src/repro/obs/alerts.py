"""Multi-window burn-rate alerting over the virtual-time store.

Classic SRE burn-rate alerting evaluates the same SLI over a *fast* and
a *slow* window and pages only when **both** breach: the fast window
gives detection latency, the slow window suppresses one-scrape blips.
:class:`AlertEngine` implements exactly that over
:class:`~repro.obs.timeseries.TimeSeriesStore` series, with every
window expressed in virtual microseconds so alerts land at deterministic
virtual timestamps and the alert log replays byte-for-byte.

Rules (:class:`AlertRule`) name a store series — with an optional single
``*`` wildcard whose match becomes a label, e.g. ``slo:*.p99_us``
matching every tenant — and one of three evaluation modes:

* ``max``   — the max sample in the window exceeds the threshold;
* ``sum``   — the window total exceeds the threshold;
* ``ratio`` — window total divided by a denominator series' window
  total exceeds the threshold (rejection-rate style rules).

Alerts are typed, numbered by a monotonic counter, deduplicated per
``(rule, series key)`` episode (a firing rule stays *active* and does
not re-fire until it clears).  The series key includes any ``node=``
prefix, so the same tenant on two cluster nodes is two independent
episodes: node1 clearing never discards node0's active page, and a
breach starting on a second node pages again instead of hiding under
the first — fired alerts carry a ``node`` label to tell them apart.
Alerts carry exemplar trace IDs resolved through
the tail sampler plus — for node-death pages — the retained recovery
Chrome trace, which :meth:`AlertEngine.dump_recovery_traces` writes to
disk with the alert annotated into the trace itself.

Node death is not a windowed signal (a dead node stops emitting); it is
delivered out-of-band via :meth:`AlertEngine.node_killed` and converted
to a ``page`` alert at the next evaluation, which bounds detection
latency to one scrape interval by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.obs.timeseries import TimeSeriesStore, _fmt_value

PAGE = "page"
TICKET = "ticket"

_MODES = ("max", "sum", "ratio")

LabelSet = Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class AlertRule:
    """One burn-rate rule: fire when the series breaches ``threshold``
    over *both* the fast and the slow window."""

    name: str
    series: str
    threshold: float
    fast_window_us: float
    slow_window_us: float
    mode: str = "max"
    denom: Optional[str] = None
    label: str = "series"
    severity: str = TICKET
    min_denom: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown alert mode {self.mode!r}")
        if self.mode == "ratio" and self.denom is None:
            raise ValueError(f"rule {self.name!r}: ratio mode needs a denom series")
        if self.series.count("*") > 1:
            raise ValueError(f"rule {self.name!r}: at most one '*' wildcard")
        if self.fast_window_us > self.slow_window_us:
            raise ValueError(
                f"rule {self.name!r}: fast window must not exceed slow window"
            )


@dataclass(frozen=True)
class Alert:
    """A fired alert — every field deterministic under replay."""

    alert_id: int
    t_us: float
    rule: str
    severity: str
    labels: LabelSet
    value: float
    threshold: float
    fast_window_us: float
    slow_window_us: float
    exemplar_trace_ids: Tuple[int, ...] = ()
    recovery_trace: Optional[dict] = field(default=None, compare=False, repr=False)

    def line(self) -> str:
        labels = ",".join(f"{k}={v}" for k, v in self.labels)
        exemplars = ",".join(str(t) for t in self.exemplar_trace_ids) or "-"
        trace = " +recovery-trace" if self.recovery_trace is not None else ""
        return (
            f"#{self.alert_id} {self.t_us:.3f}us [{self.severity}] "
            f"{self.rule}{{{labels}}} value={_fmt_value(self.value)} "
            f"threshold={_fmt_value(self.threshold)} "
            f"windows={self.fast_window_us:.0f}/{self.slow_window_us:.0f}us "
            f"exemplars={exemplars}{trace}"
        )


def default_rules(
    *,
    scrape_interval_us: float,
    p99_slo_us: float = 200_000.0,
    rejection_ratio: float = 0.5,
) -> Tuple[AlertRule, ...]:
    """The stock rule set the telemetry pipeline installs: per-tenant
    p99 burn, rejection-rate spike, scrub violations, KV-cache leaks.
    Fast window = 2 scrapes, slow = 6 (both must breach to fire)."""
    fast = 2 * scrape_interval_us
    slow = 6 * scrape_interval_us
    return (
        AlertRule(
            name="tenant-p99-burn",
            series="slo:*.p99_us",
            label="tenant",
            mode="max",
            threshold=p99_slo_us,
            fast_window_us=fast,
            slow_window_us=slow,
            severity=PAGE,
        ),
        AlertRule(
            name="rejection-spike",
            series="slo:*.rejected",
            denom="slo:*.offered",
            label="tenant",
            mode="ratio",
            threshold=rejection_ratio,
            fast_window_us=fast,
            slow_window_us=slow,
            min_denom=8.0,
            severity=TICKET,
        ),
        AlertRule(
            name="scrub-violation",
            series="counter:cluster/scrub_violations",
            mode="sum",
            threshold=0.0,
            fast_window_us=slow,
            slow_window_us=slow,
            severity=PAGE,
        ),
        AlertRule(
            name="llm-scrub-violation",
            series="counter:llm/scrub_violations",
            mode="sum",
            threshold=0.0,
            fast_window_us=slow,
            slow_window_us=slow,
            severity=PAGE,
        ),
        AlertRule(
            name="kv-cache-leak",
            series="counter:llm/kv_leaks",
            mode="sum",
            threshold=0.0,
            fast_window_us=slow,
            slow_window_us=slow,
            severity=PAGE,
        ),
    )


class AlertEngine:
    """Evaluates burn-rate rules against the store at every scrape."""

    NODE_DEATH_RULE = "node-death"

    def __init__(
        self,
        store: TimeSeriesStore,
        rules: Sequence[AlertRule] = (),
        *,
        exemplar_source: Optional[Callable[[AlertRule, LabelSet], Tuple[int, ...]]] = None,
    ) -> None:
        self.store = store
        self.rules: List[AlertRule] = list(rules)
        self.alerts: List[Alert] = []
        self.exemplar_source = exemplar_source
        self._next_id = 1
        self._active: Set[Tuple[str, LabelSet]] = set()
        self._pending_deaths: List[Tuple[float, str, Optional[dict]]] = []
        # Incremental pattern-match memo: store keys only ever
        # accumulate, so each pattern keeps (keys consumed from the
        # store's creation log, sorted matches) and scans only the keys
        # that appeared since its last evaluation.
        self._match_cache: Dict[str, Tuple[int, List[Tuple[str, str]]]] = {}

    def add_rule(self, rule: AlertRule) -> None:
        self.rules.append(rule)

    # -- out-of-band signals -------------------------------------------------
    def node_killed(
        self, t_us: float, node: str, *, recovery_trace: Optional[dict] = None
    ) -> None:
        """Queue a node-death page; it fires at the next evaluation, so
        detection latency is at most one scrape interval."""
        self._pending_deaths.append((t_us, node, recovery_trace))

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, t_us: float) -> List[Alert]:
        fired: List[Alert] = []
        for killed_at, node, trace in self._pending_deaths:
            fired.append(
                self._fire(
                    rule_name=self.NODE_DEATH_RULE,
                    severity=PAGE,
                    t_us=t_us,
                    labels=(("node", node), ("killed_at_us", f"{killed_at:.3f}")),
                    value=1.0,
                    threshold=1.0,
                    fast_window_us=0.0,
                    slow_window_us=0.0,
                    rule=None,
                    recovery_trace=trace,
                )
            )
        self._pending_deaths.clear()

        for rule in self.rules:
            for key, captured in self._matches(rule.series):
                fast = self._window_value(rule, key, captured, t_us, rule.fast_window_us)
                slow = self._window_value(rule, key, captured, t_us, rule.slow_window_us)
                breach = fast > rule.threshold and slow > rule.threshold
                # Episode state is keyed by the concrete store key, not
                # the captured label: per-node series sharing a tenant
                # must not collide (a healthy node would discard another
                # node's active episode and the alert would re-fire on
                # every scrape).
                state = (rule.name, key)
                if breach and state not in self._active:
                    self._active.add(state)
                    labels: LabelSet = ((rule.label, captured),) if captured else ()
                    if key.startswith("node="):
                        labels += (("node", key.split("|", 1)[0][len("node="):]),)
                    fired.append(
                        self._fire(
                            rule_name=rule.name,
                            severity=rule.severity,
                            t_us=t_us,
                            labels=labels,
                            value=fast,
                            threshold=rule.threshold,
                            fast_window_us=rule.fast_window_us,
                            slow_window_us=rule.slow_window_us,
                            rule=rule,
                        )
                    )
                elif not breach:
                    self._active.discard(state)
        self.alerts.extend(fired)
        return fired

    def _fire(
        self,
        *,
        rule_name: str,
        severity: str,
        t_us: float,
        labels: LabelSet,
        value: float,
        threshold: float,
        fast_window_us: float,
        slow_window_us: float,
        rule: Optional[AlertRule],
        recovery_trace: Optional[dict] = None,
    ) -> Alert:
        exemplars: Tuple[int, ...] = ()
        if rule is not None and self.exemplar_source is not None:
            exemplars = tuple(self.exemplar_source(rule, labels))
        alert = Alert(
            alert_id=self._next_id,
            t_us=t_us,
            rule=rule_name,
            severity=severity,
            labels=labels,
            value=float(value),
            threshold=float(threshold),
            fast_window_us=fast_window_us,
            slow_window_us=slow_window_us,
            exemplar_trace_ids=exemplars,
            recovery_trace=recovery_trace,
        )
        self._next_id += 1
        return alert

    def _matches(self, pattern: str) -> List[Tuple[str, str]]:
        """Resolve a series pattern to ``(key, captured_label)`` pairs in
        sorted-key order.  Incremental: keys only ever accumulate, so
        each pattern remembers how far into the store's creation log it
        has looked and classifies only the keys added since — total
        matching work over a run is O(keys), not O(keys x scrapes).
        Cluster stores hold the same logical series once per node
        (``node=<id>|`` prefix), so wildcard matching ignores the node
        prefix when capturing the label."""
        n_keys = self.store.key_count()
        seen, out = self._match_cache.get(pattern) or (0, [])
        if n_keys > seen:
            grew = False
            if "*" not in pattern:
                for key in self.store.keys_since(seen):
                    bare = key.split("|", 1)[1] if key.startswith("node=") else key
                    if bare == pattern:
                        out.append((key, ""))
                        grew = True
            else:
                prefix, suffix = pattern.split("*", 1)
                fixed = len(prefix) + len(suffix)
                for key in self.store.keys_since(seen):
                    bare = key.split("|", 1)[1] if key.startswith("node=") else key
                    if (
                        bare.startswith(prefix)
                        and bare.endswith(suffix)
                        and len(bare) > fixed
                    ):
                        out.append((key, bare[len(prefix): len(bare) - len(suffix)]))
                        grew = True
            if grew:
                out.sort()
            self._match_cache[pattern] = (n_keys, out)
        return out

    def _window_value(
        self, rule: AlertRule, key: str, captured: str, t_us: float, window_us: float
    ) -> float:
        since = t_us - window_us
        if rule.mode == "max":
            bare = key.split("|", 1)[1] if key.startswith("node=") else key
            if bare.startswith("gauge:"):
                # Gauges are recorded only on change: a gauge stuck at a
                # bad value emits no samples inside the window, yet it
                # still *is* that value — carry the last write forward.
                return float(self.store.window_max_sticky(key, since))
            return float(self.store.window_max(key, since))
        if rule.mode == "sum":
            return float(self.store.window_sum(key, since))
        # ratio: denominator lives under the same node prefix as ``key``.
        node_prefix = key.split("|", 1)[0] + "|" if key.startswith("node=") else ""
        denom_key = node_prefix + rule.denom.replace("*", captured)
        denom = float(self.store.window_sum(denom_key, since))
        if denom < rule.min_denom:
            return 0.0
        return float(self.store.window_sum(key, since)) / denom

    # -- reporting -----------------------------------------------------------
    def crash_alerts(self) -> List[Alert]:
        return [a for a in self.alerts if a.recovery_trace is not None]

    def dump_recovery_traces(self, directory: str) -> List[str]:
        """Write every crash alert's retained recovery Chrome trace —
        with the alert annotated into it — to ``directory``."""
        from repro.obs.export import annotate_chrome_trace

        os.makedirs(directory, exist_ok=True)
        paths = []
        for alert in self.crash_alerts():
            data = annotate_chrome_trace(dict(alert.recovery_trace), [alert])
            label = "-".join(v for _, v in alert.labels) or alert.rule
            label = label.replace("/", "_").replace(".", "_")
            path = os.path.join(directory, f"alert-{alert.alert_id}-{label}.json")
            with open(path, "w") as fh:
                json.dump(data, fh, indent=1)
            paths.append(path)
        return paths

    def render(self) -> str:
        lines = [f"rules={len(self.rules)} alerts={len(self.alerts)}"]
        lines.extend(alert.line() for alert in self.alerts)
        return "\n".join(lines)

    def fingerprint(self) -> str:
        return hashlib.sha256(self.render().encode()).hexdigest()

    def __len__(self) -> int:
        return len(self.alerts)
