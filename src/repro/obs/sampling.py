"""Tail-based trace sampling: keep the traces worth keeping.

PR 5's recorder keeps every span of every request, which is the right
default for a figure-9 failover run and exactly wrong for a million-
request serving campaign: almost all traces are healthy and identical,
and the handful you ever open are the slow ones, the errored ones, and
the ones that crossed a crash.  Tail-based sampling makes the retain
decision *at trace completion*, when the outcome is known:

* **always retain** errored/expired traces and traces touched by crash
  recovery (:meth:`TailSampler.note_recovery`), even past the byte
  budget — losing the evidence of a failure defeats the point;
* **retain slow traces** (completion latency above ``slow_us``) while
  the deterministic byte budget lasts — trace size is estimated from
  span names and attribute counts (:meth:`TailSampler.trace_bytes`),
  never from real serialized sizes, so the budget cut lands on the same
  request in every replay;
* **drop everything else** through
  :meth:`~repro.obs.span.SpanRecorder.discard_trace`, which reclaims the
  span memory lazily.

Retained traces are linked back to the latency histogram: each retained
trace id is filed under its latency bucket (capped per bucket), giving
the histogram-bucket → exemplar-trace navigation the alert engine uses
to attach exemplar requests to per-tenant alerts.

Everything here is driven by the engines' completion paths on the
virtual timeline; the sampler never looks at a clock itself.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs.metric import DEFAULT_BUCKETS
from repro.obs.span import SpanRecorder

_RETAIN_OUTCOMES = ("expired", "error", "failed")

# Deterministic per-span cost estimate: a fixed overhead per span plus
# the name bytes and a flat cost per attribute.  Stable across replays
# by construction (no real serialization involved).
_SPAN_BASE_BYTES = 64
_ATTR_BYTES = 16


class TailSampler:
    """Per-recorder tail sampler with a deterministic byte budget."""

    def __init__(
        self,
        recorder: SpanRecorder,
        *,
        slow_us: float = 100_000.0,
        byte_budget: int = 512 * 1024,
        exemplars_per_bucket: int = 2,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.recorder = recorder
        self.slow_us = float(slow_us)
        self.byte_budget = int(byte_budget)
        self.exemplars_per_bucket = exemplars_per_bucket
        self.bounds = tuple(bounds)
        self.considered = 0
        self.retained: Dict[int, str] = {}
        """trace_id -> retain reason ("slow" | "recovery" | outcome)."""
        self.retained_bytes = 0
        self.budget_rejected = 0
        self.discarded_traces = 0
        self.discarded_spans = 0
        self._recovery: Set[int] = set()
        self._exemplars: Dict[int, List[int]] = {}
        """latency-bucket index -> first retained trace ids (capped)."""
        self._by_tenant: Dict[str, List[int]] = {}

    # -- signals from the engines -------------------------------------------
    def note_recovery(self, trace_id: Optional[int]) -> None:
        """Mark a trace as crash-recovery-touched: always retained."""
        if trace_id is not None:
            self._recovery.add(trace_id)

    def observe(
        self,
        trace_id: Optional[int],
        *,
        latency_us: float,
        outcome: str,
        tenant: Optional[str] = None,
    ) -> bool:
        """The retain decision for one completed trace.  Returns whether
        the trace was kept; a dropped trace's spans are reclaimed."""
        if trace_id is None or not self.recorder.enabled:
            return False
        if trace_id in self.retained:
            return True
        self.considered += 1
        if trace_id in self._recovery:
            reason = "recovery"
        elif outcome in _RETAIN_OUTCOMES:
            reason = outcome
        elif latency_us > self.slow_us:
            reason = "slow"
        else:
            reason = None
        if reason is None:
            self._discard(trace_id)
            return False
        cost = self.trace_bytes(trace_id)
        if reason == "slow" and self.retained_bytes + cost > self.byte_budget:
            # Only discretionary (slow) retention bows to the budget;
            # failure evidence is kept even if it overruns.
            self.budget_rejected += 1
            self._discard(trace_id)
            return False
        self.retained[trace_id] = reason
        self.retained_bytes += cost
        bucket = bisect_right(self.bounds, latency_us)
        exemplars = self._exemplars.setdefault(bucket, [])
        if len(exemplars) < self.exemplars_per_bucket:
            exemplars.append(trace_id)
        if tenant is not None:
            per_tenant = self._by_tenant.setdefault(tenant, [])
            if len(per_tenant) < 4:
                per_tenant.append(trace_id)
        return True

    def _discard(self, trace_id: int) -> None:
        self.discarded_spans += self.recorder.discard_trace(trace_id)
        self.discarded_traces += 1
        self._recovery.discard(trace_id)

    # -- deterministic sizing -----------------------------------------------
    def trace_bytes(self, trace_id: int) -> int:
        """Deterministic size estimate of a trace's retained bytes."""
        total = 0
        for span in self.recorder.trace_spans(trace_id):
            total += _SPAN_BASE_BYTES + len(span.name) + _ATTR_BYTES * len(span.attrs)
        return total

    # -- exemplar navigation -------------------------------------------------
    def bucket_exemplars(self) -> Dict[int, Tuple[int, ...]]:
        """latency-bucket index -> retained exemplar trace ids."""
        return {b: tuple(ids) for b, ids in sorted(self._exemplars.items())}

    def tenant_exemplars(self, tenant: str) -> Tuple[int, ...]:
        return tuple(self._by_tenant.get(tenant, ()))

    def top_exemplars(self, limit: int = 4) -> Tuple[int, ...]:
        """Exemplars from the slowest latency buckets downwards."""
        out: List[int] = []
        for bucket in sorted(self._exemplars, reverse=True):
            for trace_id in self._exemplars[bucket]:
                out.append(trace_id)
                if len(out) >= limit:
                    return tuple(out)
        return tuple(out)

    # -- reporting ------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "considered": self.considered,
            "retained": len(self.retained),
            "retained_bytes": self.retained_bytes,
            "byte_budget": self.byte_budget,
            "budget_rejected": self.budget_rejected,
            "discarded_traces": self.discarded_traces,
            "discarded_spans": self.discarded_spans,
        }

    def render(self) -> str:
        lines = [
            " ".join(f"{k}={v}" for k, v in sorted(self.stats().items()))
        ]
        for trace_id in sorted(self.retained):
            lines.append(f"trace {trace_id} {self.retained[trace_id]}")
        return "\n".join(lines)

    def fingerprint(self) -> str:
        return hashlib.sha256(self.render().encode()).hexdigest()
