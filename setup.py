"""Setuptools shim for environments without PEP 517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "CRONUS (MICRO 2022) reproduction: fault-isolated, secure, "
        "high-performance heterogeneous TEE as a full-system simulation"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
