#!/usr/bin/env python3
"""Distributed CRONUS (the section VII-C extension).

Four CRONUS machines mesh-attest each other, train LeNet data-parallel
with encrypted cross-node gradient exchange, and survive a node failure
mid-run by rebalancing onto the surviving attested nodes.

Run:  python examples/distributed_cluster.py
"""

import repro.workloads  # registers kernels
from repro.cluster import Cluster, distributed_train
from repro.metrics import format_table


def scaling() -> None:
    rows = []
    for nodes in (1, 2, 4):
        cluster = Cluster(num_nodes=4)
        result = distributed_train(cluster, nodes=nodes, total_samples=128)
        rows.append(
            [
                nodes,
                f"{result.total_time_us / 1000:.2f} ms",
                f"{result.comm_time_us / 1000:.2f} ms",
                f"{result.final_loss:.3f}",
            ]
        )
    print("LeNet, 128 samples, data-parallel across machines:")
    print(format_table(["nodes", "train time", "comm (encrypted)", "loss"], rows))
    print()


def failure() -> None:
    cluster = Cluster(num_nodes=3)
    result = distributed_train(
        cluster, nodes=3, total_samples=144, fail_node_at_step=1
    )
    dead = [n.name for n in cluster.nodes if not n.alive]
    print(
        f"node {dead[0]} died after step 1 -> shard rebalanced onto survivors; "
        f"job finished in {result.steps} steps "
        f"({result.total_time_us / 1000:.2f} ms), {result.reschedules} reschedule"
    )


if __name__ == "__main__":
    scaling()
    failure()
