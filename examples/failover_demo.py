#!/usr/bin/env python3
"""Failover demo (figure 9): crash one partition, watch the other keep going.

Two matrix-computing tasks run on two GPUs in two S-EL2 partitions.  At
t = 1 s the first partition is crashed; CRONUS's proceed-trap recovery
restarts only that partition's mOS and the task is resubmitted, while the
second task never stops.

Run:  python examples/failover_demo.py
"""

import repro.workloads  # registers kernels
from repro.faults import run_failover_experiment


def sparkline(values, peak) -> str:
    blocks = " .:-=+*#"
    return "".join(
        blocks[min(len(blocks) - 1, int(v / max(peak, 1) * (len(blocks) - 1)))]
        for v in values
    )


def main() -> None:
    result = run_failover_experiment(
        duration_us=3_000_000.0, crash_at_us=1_000_000.0, bucket_us=100_000.0
    )
    a = result.throughput["task-a"]
    b = result.throughput["task-b"]
    peak = max(max(a), max(b))
    crash_bucket = int(result.crash_at_us / result.bucket_us)

    print("throughput over time (each column = 100 ms):")
    print(f"  task-a (crashed): |{sparkline(a, peak)}|")
    print(f"  task-b (healthy): |{sparkline(b, peak)}|")
    print(f"                     {' ' * crash_bucket}^ crash")
    print()
    print(f"recovery (invalidate + clear + mOS reload): {result.recovery_us / 1000:.1f} ms")
    print(f"task resubmission after recovery:           {result.resubmit_us / 1000:.2f} ms")
    print("a cold machine reboot (every baseline):      ~120 s")


if __name__ == "__main__":
    main()
