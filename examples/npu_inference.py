#!/usr/bin/env python3
"""NPU inference through the TVM-lite pipeline (figure 10b).

Compiles three quantized DNN graphs (ResNet18/50 and YoloV3 analogs) to
VTA instruction programs, deploys them into an NPU mEnclave on CRONUS, and
measures inference latency on the NPU and on the CPU.

Run:  python examples/npu_inference.py
"""

import numpy as np

import repro.workloads  # registers kernels
from repro import CronusSystem
from repro.metrics import format_table
from repro.workloads.tvm import INFERENCE_GRAPHS, compile_graph, reference


def main() -> None:
    rows = []
    for name in ("resnet18", "resnet50", "yolov3"):
        graph = INFERENCE_GRAPHS[name]()
        module = compile_graph(graph)

        system = CronusSystem()
        rt = system.runtime(npu_programs=module.programs, owner="tvm")
        module.deploy(rt)

        x = np.random.default_rng(7).integers(
            -8, 8, (1, graph.input_features)
        ).astype(np.int8)

        start = system.clock.now
        out = module.run(rt, x)
        npu_ms = (system.clock.now - start) / 1000

        assert np.array_equal(out, reference(module, x)), "inference diverged!"

        start = system.clock.now
        module.run_on_cpu(rt, x)
        cpu_ms = (system.clock.now - start) / 1000

        rows.append([name, len(graph.layers), f"{npu_ms:.2f}", f"{cpu_ms:.2f}"])
        system.release(rt)

    print("Inference latency on CRONUS (simulated):")
    print(format_table(["model", "layers", "NPU (ms)", "CPU (ms)"], rows))


if __name__ == "__main__":
    main()
