#!/usr/bin/env python3
"""Quickstart: heterogeneous TEE computation on CRONUS in ~60 lines.

Boots the simulated platform, attests it, partitions a small matrix
workload into a CPU mEnclave + CUDA mEnclave pair, and streams CUDA calls
over sRPC.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.workloads  # registers the CUDA kernel library
from repro import CronusSystem
from repro.secure.monitor import verify_attestation_report


def main() -> None:
    # 1. Boot the machine: secure monitor validates the device tree, SPM
    #    creates one S-EL2 partition per device, each partition loads its
    #    mOS (all measured).
    system = CronusSystem()
    print("partitions:", [m.partition.name for m in system.moses.values()])

    # 2. Remote attestation: the client checks the signed closure of
    #    hardware and software state before sending any data.
    report = system.attest_platform()
    verify_attestation_report(
        report,
        system.platform.attestation_service.public,
        {name: ca.public for name, ca in system.platform.vendors.items()},
        {
            d.name: d.vendor_cert
            for d in system.platform.devices()
            if d.vendor_cert is not None and d.device_type != "cpu"
        },
    )
    print("platform attestation: verified  (mOSes:", ", ".join(report.mos_hashes), ")")

    # 3. Auto-partition a heterogeneous task: the runtime routes CUDA calls
    #    through an sRPC stream into a CUDA mEnclave on the GPU partition.
    rt = system.runtime(cuda_kernels=("matmul",), owner="quickstart")

    a_host = np.random.default_rng(0).standard_normal((64, 64)).astype(np.float32)
    start = system.clock.now
    a = rt.cudaMalloc((64, 64))
    c = rt.cudaMalloc((64, 64))
    rt.cudaMemcpyH2D(a, a_host)
    rt.cudaLaunchKernel("matmul", [a, a, c])         # streamed, no waiting
    result = rt.cudaMemcpyD2H(c)                      # sync point
    elapsed = system.clock.now - start

    assert np.allclose(result, a_host @ a_host, atol=1e-2)
    print(f"matmul on the CUDA mEnclave: correct, {elapsed:.1f} simulated us")

    # 4. Fault isolation in one line: crash the GPU partition; only it
    #    restarts (milliseconds), the rest of the machine is untouched.
    recovery = system.fail_partition("gpu0")
    print(
        f"GPU partition crash -> recovered in {recovery.total_us / 1000:.1f} ms "
        f"(a machine reboot would take "
        f"{system.platform.costs.machine_reboot_us / 1e6:.0f} s)"
    )
    system.release(rt)


if __name__ == "__main__":
    main()
