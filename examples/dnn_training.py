#!/usr/bin/env python3
"""DNN training in the TEE (the paper's headline workload, figures 8/11a).

Trains LeNet on synthetic MNIST inside CRONUS (whole training loop
protected: CPU mEnclave drives, CUDA mEnclave computes) and compares the
simulated training time against native Linux, monolithic TrustZone and
HIX-TrustZone.  Then demonstrates spatial sharing: aggregate throughput of
1-4 tenants training on the same GPU.

Run:  python examples/dnn_training.py
"""

import repro.workloads  # registers kernels
from repro.metrics import format_table, normalize
from repro.systems import CronusSystem, HixTrustZone, MonolithicTrustZone, NativeLinux
from repro.workloads.datasets import synthetic_mnist
from repro.workloads.dnn import TRAINING_KERNELS, lenet, spatial_sharing_throughput, train


def compare_systems() -> None:
    data = synthetic_mnist(64)
    times, losses = {}, {}
    for cls in (NativeLinux, MonolithicTrustZone, HixTrustZone, CronusSystem):
        system = cls()
        rt = system.runtime(cuda_kernels=TRAINING_KERNELS, owner="trainer")
        model = lenet()
        start = system.clock.now
        history = train(rt, model, data, epochs=2, batch_size=16)
        times[system.name] = system.clock.now - start
        losses[system.name] = history[-1]
        model.free(rt)
        system.release(rt)

    norm = normalize(times, "linux")
    rows = [
        [name, f"{times[name] / 1000:.2f} ms", f"{norm[name]:.3f}x", f"{losses[name]:.4f}"]
        for name in times
    ]
    print("LeNet, 2 epochs, batch 16 (simulated time):")
    print(format_table(["system", "training time", "vs native", "final loss"], rows))
    print()


def spatial_sharing() -> None:
    print("Spatial sharing of one GPU (figure 11a):")
    rows = []
    base = None
    for tenants in (1, 2, 3, 4):
        throughput = spatial_sharing_throughput(CronusSystem(), tenants)
        base = base or throughput
        rows.append([tenants, f"{throughput:.0f}", f"{throughput / base:.2f}x"])
    print(format_table(["mEnclaves", "agg. steps/s", "vs dedicated"], rows))


if __name__ == "__main__":
    compare_systems()
    spatial_sharing()
