#!/usr/bin/env python3
"""Attack gallery: every in-scope attack from the threat model, live.

Runs the complete adversary battery against fresh CRONUS systems — from a
normal world reading secure DRAM, through RPC replay/reorder/drop/tamper,
to the three failure-time attacks (TOCTOU, deadlock, crashed-information
leak) — and prints how each was blocked.

Run:  python examples/attack_gallery.py
"""

import repro.workloads  # registers kernels
from repro.attacks import run_all_attacks


def main() -> None:
    outcomes = run_all_attacks()
    width = max(len(o.name) for o in outcomes)
    blocked = 0
    for outcome in outcomes:
        status = "BLOCKED" if outcome.blocked else "** BREACH **"
        blocked += outcome.blocked
        print(f"{outcome.name:<{width}}  {status:12s}  {outcome.detail}")
    print()
    print(f"{blocked}/{len(outcomes)} attacks blocked")
    if blocked != len(outcomes):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
