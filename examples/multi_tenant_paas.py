#!/usr/bin/env python3
"""Multi-tenant PaaS: two applications, strong mutual isolation.

The paper's deployment story (section I): a PaaS node runs many tenants on
shared accelerators.  Here tenant A trains a model while tenant B runs
inference on the NPU, spatially sharing the machine.  Tenant B then turns
hostile — tries to call tenant A's enclave, read its stream memory, and
finally crashes its own partition's device stack — and tenant A never
notices.

Run:  python examples/multi_tenant_paas.py
"""

import numpy as np

import repro.workloads  # registers kernels
from repro import CronusSystem
from repro.enclave.menclave import OwnershipError
from repro.hw.memory import AccessFault
from repro.workloads.datasets import synthetic_mnist
from repro.workloads.dnn import TRAINING_KERNELS, lenet, train
from repro.workloads.tvm import compile_graph, reference, resnet18_graph


def main() -> None:
    system = CronusSystem()

    # --- tenant A: DNN training on the GPU partition -------------------
    rt_a = system.runtime(cuda_kernels=TRAINING_KERNELS, owner="tenant-a")
    model = lenet()
    history = train(rt_a, model, synthetic_mnist(32), epochs=1, batch_size=16)
    print(f"tenant A: trained LeNet, loss {history[-1]:.4f}")

    # --- tenant B: NPU inference, sharing the same machine -------------
    graph = resnet18_graph()
    module = compile_graph(graph)
    rt_b = system.runtime(npu_programs=module.programs, owner="tenant-b")
    x = np.random.default_rng(1).integers(-8, 8, (1, graph.input_features)).astype(np.int8)
    out = module.run(rt_b, x)
    assert np.array_equal(out, reference(module, x))
    print("tenant B: ResNet18 inference on the NPU, verified")

    # --- tenant B turns hostile ------------------------------------------
    victim = next(iter(system.application("tenant-a").handles().values()))

    try:  # 1. call tenant A's mEnclave without its secret
        tag = victim.enclave.owner_tag(b"\x00" * 32, "noop", 1)
        victim.enclave.mecall_untrusted("noop", (), {}, counter=1, tag=tag)
        print("BREACH: cross-tenant mECall executed!")
    except OwnershipError as exc:
        print(f"cross-tenant mECall blocked: {exc}")

    try:  # 2. scrape tenant A's secure memory from the normal world
        system.platform.memory.read(system.platform.secure_base, 64, world="normal")
        print("BREACH: secure memory readable!")
    except AccessFault as exc:
        print(f"secure memory scrape blocked: {exc}")

    # 3. crash the NPU partition (tenant B's own stack misbehaves)
    report = system.fail_partition("npu0")
    print(
        f"NPU partition crashed and recovered in {report.total_us / 1000:.1f} ms; "
        f"GPU partition state: {system.moses['gpu0'].partition.state.value}"
    )

    # Tenant A continues training, oblivious.
    history = train(rt_a, model, synthetic_mnist(32, seed=99), epochs=1, batch_size=16)
    print(f"tenant A: continued training through the crash, loss {history[-1]:.4f}")

    model.free(rt_a)
    system.release(rt_a)


if __name__ == "__main__":
    main()
